/**
 * @file
 * Tests for the iterative storage-backed conv2d automaton: precise
 * final level, per-level flush semantics, and accuracy improving with
 * the voltage schedule.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/conv2d_storage.hpp"
#include "core/controller.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"

namespace anytime {
namespace {

TEST(ConvolveFromStorage, PreciseStorageMatchesPlainConvolution)
{
    const GrayImage scene = generateScene(24, 18, 1);
    const Kernel kernel = Kernel::gaussianBlur(2);
    ApproxStorage<std::uint8_t> storage(scene.size(), 7, 0.0);
    storage.flush(scene.data());
    const GrayImage out = convolveFromStorage(
        storage, scene.width(), scene.height(), kernel);
    // Borders use clamping in both paths.
    GrayImage expected(scene.width(), scene.height());
    for (std::size_t y = 0; y < scene.height(); ++y)
        for (std::size_t x = 0; x < scene.width(); ++x)
            expected.at(x, y) = convolvePixel(scene, kernel, x, y);
    EXPECT_EQ(out, expected);
}

TEST(ConvolveFromStorage, SizeMismatchRejected)
{
    const GrayImage scene = generateScene(8, 8, 2);
    ApproxStorage<std::uint8_t> storage(17, 7);
    EXPECT_THROW(convolveFromStorage(storage, 8, 8, Kernel::boxBlur(1)),
                 FatalError);
}

TEST(Conv2dStorageAutomaton, FinalLevelIsPrecise)
{
    const GrayImage scene = generateScene(31, 27, 3);
    const Kernel kernel = Kernel::boxBlur(2);
    const GrayImage precise = convolve(scene, kernel);

    auto bundle = makeConv2dStorageAutomaton(scene, kernel);
    const RunOutcome outcome = runToCompletion(*bundle.automaton);

    EXPECT_TRUE(outcome.reachedPrecise);
    EXPECT_TRUE(bundle.output->final());
    EXPECT_EQ(*bundle.output->read().value, precise);
}

TEST(Conv2dStorageAutomaton, OneVersionPerVoltageLevel)
{
    const GrayImage scene = generateScene(16, 16, 4);
    Conv2dStorageConfig config;
    config.schedule = StorageSchedule({{0.2, 1e-3}, {0.3, 1e-4},
                                       {1.0, 0.0}});
    auto bundle =
        makeConv2dStorageAutomaton(scene, Kernel::boxBlur(1), config);
    runToCompletion(*bundle.automaton);
    EXPECT_EQ(bundle.output->version(), 3u);
}

TEST(Conv2dStorageAutomaton, AccuracyImprovesAlongTheSchedule)
{
    // Aggressive probabilities so every level shows measurable error.
    const GrayImage scene = generateScene(64, 64, 5);
    const Kernel kernel = Kernel::gaussianBlur(2);
    const GrayImage precise = convolve(scene, kernel);

    Conv2dStorageConfig config;
    config.schedule = StorageSchedule(
        {{0.2, 1e-3}, {0.25, 1e-4}, {0.3, 1e-5}, {1.0, 0.0}});
    auto bundle = makeConv2dStorageAutomaton(scene, kernel, config);

    std::vector<double> snrs;
    bundle.output->addObserver([&](const Snapshot<GrayImage> &snap) {
        snrs.push_back(signalToNoiseDb(precise, *snap.value));
    });
    runToCompletion(*bundle.automaton);

    ASSERT_EQ(snrs.size(), 4u);
    // Each level flushes, so its error reflects only its own voltage:
    // the sequence improves (allow slack: upsets are stochastic).
    EXPECT_LT(snrs.front(), snrs.back());
    EXPECT_TRUE(std::isinf(snrs.back()));
    for (std::size_t i = 1; i < snrs.size(); ++i)
        EXPECT_GE(snrs[i], snrs[i - 1] - 3.0) << "level " << i;
}

TEST(Conv2dStorageAutomaton, FaultStreamIsDeterministic)
{
    const GrayImage scene = generateScene(32, 32, 6);
    const Kernel kernel = Kernel::boxBlur(1);
    Conv2dStorageConfig config;
    config.schedule = StorageSchedule({{0.2, 1e-3}, {1.0, 0.0}});
    config.faultSeed = 1234;

    const auto run_once = [&] {
        auto bundle =
            makeConv2dStorageAutomaton(scene, kernel, config);
        std::vector<GrayImage> versions;
        bundle.output->addObserver(
            [&](const Snapshot<GrayImage> &snap) {
                versions.push_back(*snap.value);
            });
        runToCompletion(*bundle.automaton);
        return versions;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace anytime
