/**
 * @file
 * Tests for the debayer kernel and its anytime automaton.
 */

#include <gtest/gtest.h>

#include "apps/debayer.hpp"
#include "core/controller.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"

namespace anytime {
namespace {

TEST(Debayer, UniformColorReconstructsExactly)
{
    RgbImage color(8, 8, RgbPixel{60, 120, 180});
    const GrayImage mosaic = bayerMosaic(color);
    const RgbImage restored = debayer(mosaic);
    for (std::size_t i = 0; i < restored.size(); ++i) {
        EXPECT_EQ(restored[i].r, 60);
        EXPECT_EQ(restored[i].g, 120);
        EXPECT_EQ(restored[i].b, 180);
    }
}

TEST(Debayer, SitesKeepTheirOwnSample)
{
    const RgbImage color = generateColorScene(16, 16, 1);
    const GrayImage mosaic = bayerMosaic(color);
    const RgbImage restored = debayer(mosaic);
    // Red sites keep red, green sites green, blue sites blue.
    for (std::size_t y = 0; y < 16; ++y) {
        for (std::size_t x = 0; x < 16; ++x) {
            if (y % 2 == 0 && x % 2 == 0)
                EXPECT_EQ(restored.at(x, y).r, mosaic.at(x, y));
            else if (y % 2 == 1 && x % 2 == 1)
                EXPECT_EQ(restored.at(x, y).b, mosaic.at(x, y));
            else
                EXPECT_EQ(restored.at(x, y).g, mosaic.at(x, y));
        }
    }
}

TEST(Debayer, RoundTripIsReasonablyFaithful)
{
    const RgbImage color = generateColorScene(64, 64, 2);
    const RgbImage restored = debayer(bayerMosaic(color));
    // Bilinear demosaic on a natural-ish scene: double-digit SNR.
    EXPECT_GT(signalToNoiseDb(color, restored), 10.0);
}

TEST(DebayerAutomaton, FinalOutputIsBitExact)
{
    const RgbImage color = generateColorScene(29, 22, 3); // non-pow2
    const GrayImage mosaic = bayerMosaic(color);
    const RgbImage precise = debayer(mosaic);

    DebayerConfig config;
    config.publishCount = 8;
    auto bundle = makeDebayerAutomaton(mosaic, config);
    const RunOutcome outcome = runToCompletion(*bundle.automaton);

    EXPECT_TRUE(outcome.reachedPrecise);
    EXPECT_TRUE(bundle.output->final());
    EXPECT_EQ(*bundle.output->read().value, precise);
}

TEST(DebayerAutomaton, MultiWorkerFinalOutputIsBitExact)
{
    const RgbImage color = generateColorScene(32, 24, 4);
    const GrayImage mosaic = bayerMosaic(color);
    DebayerConfig config;
    config.workers = 2;
    auto bundle = makeDebayerAutomaton(mosaic, config);
    runToCompletion(*bundle.automaton);
    EXPECT_EQ(*bundle.output->read().value, debayer(mosaic));
}

TEST(DebayerAutomaton, IntermediateVersionsApproximateTheOutput)
{
    const RgbImage color = generateColorScene(64, 64, 5);
    const GrayImage mosaic = bayerMosaic(color);
    const RgbImage precise = debayer(mosaic);

    DebayerConfig config;
    config.publishCount = 16;
    auto bundle = makeDebayerAutomaton(mosaic, config);

    std::vector<double> snrs;
    bundle.output->addObserver([&](const Snapshot<RgbImage> &snap) {
        snrs.push_back(signalToNoiseDb(precise, *snap.value));
    });
    runToCompletion(*bundle.automaton);

    ASSERT_GE(snrs.size(), 8u);
    EXPECT_GT(snrs.front(), 0.0) << "even the first version is a "
                                    "complete (coarse) image";
    for (std::size_t i = 1; i < snrs.size(); ++i)
        EXPECT_GE(snrs[i], snrs[i - 1] - 1.0);
}

} // namespace
} // namespace anytime
