/**
 * @file
 * Tests for the 5/3 wavelet kernel: perfect reconstruction (the LeGall
 * 5/3 lifting transform is integer-reversible), perforation semantics,
 * and the iterative automaton's steep accuracy staircase.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/dwt53.hpp"
#include "core/controller.hpp"
#include "harness/profiler.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"

namespace anytime {
namespace {

/** Sizes including odd and tiny extents (boundary-extension paths). */
class Dwt53Reconstruction
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(Dwt53Reconstruction, ForwardInverseIsIdentity)
{
    const auto [w, h] = GetParam();
    const GrayImage scene = generateScene(w, h, 42);
    const GrayImage restored = dwt53Inverse(dwt53Forward(scene));
    EXPECT_EQ(restored, scene);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, Dwt53Reconstruction,
    ::testing::Values(std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{3, 3},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{5, 8},
                      std::pair<std::size_t, std::size_t>{8, 5},
                      std::pair<std::size_t, std::size_t>{16, 16},
                      std::pair<std::size_t, std::size_t>{31, 17},
                      std::pair<std::size_t, std::size_t>{64, 33}));

TEST(Dwt53, ForwardConcentratesEnergyInLowBand)
{
    // For a smooth image the high band (second half of each line)
    // should carry far less energy than the low band.
    GrayImage smooth(32, 32);
    for (std::size_t y = 0; y < 32; ++y)
        for (std::size_t x = 0; x < 32; ++x)
            smooth.at(x, y) = static_cast<std::uint8_t>(4 * x + 3 * y);
    const WaveletImage coeffs = dwt53Forward(smooth);
    double low = 0, high = 0;
    for (std::size_t y = 0; y < 32; ++y) {
        for (std::size_t x = 0; x < 32; ++x) {
            const double e = static_cast<double>(coeffs.at(x, y)) *
                             coeffs.at(x, y);
            if (x < 16 && y < 16)
                low += e;
            else
                high += e;
        }
    }
    EXPECT_GT(low, 20 * high);
}

TEST(Dwt53, PerforatedStrideOneIsPrecise)
{
    const GrayImage scene = generateScene(24, 24, 1);
    EXPECT_EQ(dwt53ForwardPerforated(scene, 1), dwt53Forward(scene));
}

TEST(Dwt53, PerforationErrorShrinksWithSmallerStride)
{
    const GrayImage scene = generateScene(64, 64, 2);
    double prev_mse = -1.0;
    for (std::uint32_t stride : {8u, 4u, 2u, 1u}) {
        const GrayImage restored =
            dwt53Inverse(dwt53ForwardPerforated(scene, stride));
        const double mse = meanSquaredError(scene, restored);
        if (prev_mse >= 0) {
            EXPECT_LE(mse, prev_mse) << "stride " << stride;
        }
        prev_mse = mse;
    }
    EXPECT_EQ(prev_mse, 0.0); // stride 1 reconstructs exactly
}

TEST(Dwt53Automaton, FinalOutputIsThePreciseTransform)
{
    const GrayImage scene = generateScene(33, 21, 3);
    auto bundle = makeDwt53Automaton(scene);
    const RunOutcome outcome = runToCompletion(*bundle.automaton);

    EXPECT_TRUE(outcome.reachedPrecise);
    EXPECT_TRUE(bundle.output->final());
    EXPECT_EQ(*bundle.output->read().value, dwt53Forward(scene));
    // And its precise inverse reconstructs the input exactly.
    EXPECT_EQ(dwt53Inverse(*bundle.output->read().value), scene);
}

TEST(Dwt53Automaton, PublishesOneVersionPerPerforationLevel)
{
    const GrayImage scene = generateScene(16, 16, 4);
    Dwt53Config config;
    config.schedule = PerforationSchedule({4, 2, 1});
    auto bundle = makeDwt53Automaton(scene, config);
    runToCompletion(*bundle.automaton);
    EXPECT_EQ(bundle.output->version(), 3u);
}

TEST(Dwt53Automaton, IterativeAccuracyStaircaseIsMonotone)
{
    const GrayImage scene = generateScene(48, 48, 5);
    auto bundle = makeDwt53Automaton(scene);
    const auto profile = profileToCompletion<WaveletImage>(
        *bundle.automaton, *bundle.output,
        [&](const WaveletImage &coeffs) {
            return signalToNoiseDb(scene, dwt53Inverse(coeffs));
        },
        1.0);

    ASSERT_EQ(profile.size(), 4u); // geometric(4) levels
    for (std::size_t i = 1; i < profile.size(); ++i)
        EXPECT_GE(profile[i].accuracyDb, profile[i - 1].accuracyDb);
    EXPECT_TRUE(std::isinf(profile.back().accuracyDb));
}

} // namespace
} // namespace anytime
