/**
 * @file
 * Tests for histogram equalization and its four-stage asynchronous
 * pipeline automaton.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/histeq.hpp"
#include "core/controller.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"

namespace anytime {
namespace {

TEST(Histeq, HistogramCountsEveryPixelOnce)
{
    const GrayImage scene = generateScene(40, 30, 1);
    const PixelHistogram histogram = buildHistogram(scene);
    std::uint64_t total = 0;
    for (std::uint64_t bin : histogram.bins)
        total += bin;
    EXPECT_EQ(total, scene.size());
    EXPECT_EQ(histogram.samples, scene.size());
}

TEST(Histeq, CdfIsMonotoneEndingAtOne)
{
    const PixelHistogram histogram =
        buildHistogram(generateScene(32, 32, 2));
    const PixelCdf cdf = buildCdf(histogram);
    for (std::size_t v = 1; v < cdf.size(); ++v)
        EXPECT_GE(cdf[v], cdf[v - 1]);
    EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
    PixelHistogram empty;
    EXPECT_THROW(buildCdf(empty), FatalError);
}

TEST(Histeq, LutOnUniformHistogramIsNearIdentityRamp)
{
    // A perfectly uniform histogram equalizes to a full-range ramp.
    PixelHistogram histogram;
    histogram.bins.fill(4);
    histogram.samples = 4 * 256;
    const PixelLut lut = buildLut(buildCdf(histogram));
    EXPECT_EQ(lut[0], 0);
    EXPECT_EQ(lut[255], 255);
    for (std::size_t v = 1; v < 256; ++v)
        EXPECT_GE(lut[v], lut[v - 1]);
}

TEST(Histeq, TwoLevelImageStretchesToFullRange)
{
    GrayImage image(4, 2);
    for (std::size_t i = 0; i < 4; ++i)
        image[i] = 100;
    for (std::size_t i = 4; i < 8; ++i)
        image[i] = 150;
    const GrayImage out = histogramEqualize(image);
    // Half the mass at each level: cdf(100)=0.5 -> 0, cdf(150)=1 -> 255
    // after anchoring at cdf_min.
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[7], 255);
}

TEST(Histeq, EqualizationWidensDynamicRange)
{
    // Compress a scene into [90, 160] and verify equalization stretches
    // it back out.
    GrayImage squashed = generateScene(48, 48, 3);
    for (std::size_t i = 0; i < squashed.size(); ++i)
        squashed[i] =
            static_cast<std::uint8_t>(90 + (squashed[i] * 70) / 255);
    const GrayImage out = histogramEqualize(squashed);
    std::uint8_t lo = 255, hi = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        lo = std::min(lo, out[i]);
        hi = std::max(hi, out[i]);
    }
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 255);
}

TEST(HisteqAutomaton, FinalOutputIsBitExact)
{
    const GrayImage scene = generateScene(37, 26, 4); // non-pow2
    const GrayImage precise = histogramEqualize(scene);

    HisteqConfig config;
    config.histogramVersions = 4;
    config.applyVersions = 4;
    auto bundle = makeHisteqAutomaton(scene, config);
    const RunOutcome outcome = runToCompletion(*bundle.automaton);

    EXPECT_TRUE(outcome.reachedPrecise);
    EXPECT_TRUE(bundle.output->final());
    EXPECT_EQ(*bundle.output->read().value, precise);
}

TEST(HisteqAutomaton, HistogramStageSamplesEveryPixelExactlyOnce)
{
    const GrayImage scene = generateScene(30, 20, 5);
    auto bundle = makeHisteqAutomaton(scene);
    runToCompletion(*bundle.automaton);

    const auto hist = bundle.histogram->read();
    ASSERT_TRUE(hist);
    EXPECT_TRUE(hist.final);
    EXPECT_EQ(*hist.value, buildHistogram(scene));
}

TEST(HisteqAutomaton, IntermediateHistogramIsValidSample)
{
    const GrayImage scene = generateScene(64, 64, 6);
    HisteqConfig config;
    config.histogramVersions = 16;
    auto bundle = makeHisteqAutomaton(scene, config);

    std::vector<PixelHistogram> versions;
    bundle.histogram->addObserver(
        [&](const Snapshot<PixelHistogram> &snap) {
            versions.push_back(*snap.value);
        });
    runToCompletion(*bundle.automaton);

    ASSERT_GE(versions.size(), 8u);
    // Sample counts grow monotonically; each intermediate histogram has
    // exactly `samples` total mass (Figure 3's anytime histogram).
    std::uint64_t prev = 0;
    for (const auto &histogram : versions) {
        std::uint64_t total = 0;
        for (std::uint64_t bin : histogram.bins)
            total += bin;
        EXPECT_EQ(total, histogram.samples);
        EXPECT_GE(histogram.samples, prev);
        prev = histogram.samples;
    }
    EXPECT_EQ(versions.back().samples, scene.size());
}

TEST(HisteqAutomaton, LutVersionsEventuallyFinal)
{
    const GrayImage scene = generateScene(32, 32, 7);
    auto bundle = makeHisteqAutomaton(scene);
    runToCompletion(*bundle.automaton);
    const auto lut = bundle.lut->read();
    ASSERT_TRUE(lut);
    EXPECT_TRUE(lut.final);
    EXPECT_EQ(*lut.value,
              buildLut(buildCdf(buildHistogram(scene))));
}

} // namespace
} // namespace anytime
