/**
 * @file
 * Tests for k-means clustering and its two-stage automaton.
 */

#include <gtest/gtest.h>

#include <set>

#include "apps/kmeans.hpp"
#include "core/controller.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"

namespace anytime {
namespace {

TEST(Kmeans, SeedsAreDeterministicAndBounded)
{
    const RgbImage scene = generateColorScene(32, 32, 1);
    const auto a = kmeansSeeds(scene, 8);
    const auto b = kmeansSeeds(scene, 8);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 8u);
    EXPECT_THROW(kmeansSeeds(scene, 0), FatalError);
    EXPECT_THROW(kmeansSeeds(scene, 300), FatalError);
}

TEST(Kmeans, NearestCentroidPicksClosest)
{
    const std::vector<RgbPixel> centroids{
        {0, 0, 0}, {255, 255, 255}, {255, 0, 0}};
    EXPECT_EQ(nearestCentroid(centroids, {10, 10, 10}), 0u);
    EXPECT_EQ(nearestCentroid(centroids, {250, 250, 250}), 1u);
    EXPECT_EQ(nearestCentroid(centroids, {200, 30, 30}), 2u);
    // Ties break to the lower index (deterministic).
    const std::vector<RgbPixel> pair{{0, 0, 0}, {0, 0, 0}};
    EXPECT_EQ(nearestCentroid(pair, {5, 5, 5}), 0u);
}

TEST(Kmeans, ClusterImageUsesOnlyCentroidColors)
{
    const RgbImage scene = generateColorScene(24, 24, 2);
    const KmeansResult result = kmeansCluster(scene, 5);
    std::set<std::uint32_t> palette;
    for (const RgbPixel &c : result.centroids)
        palette.insert((std::uint32_t(c.r) << 16) |
                       (std::uint32_t(c.g) << 8) | c.b);
    for (std::size_t i = 0; i < result.image.size(); ++i) {
        const RgbPixel &p = result.image[i];
        EXPECT_TRUE(palette.count((std::uint32_t(p.r) << 16) |
                                  (std::uint32_t(p.g) << 8) | p.b))
            << "pixel " << i << " not a centroid color";
    }
}

TEST(Kmeans, ClusteringApproximatesTheScene)
{
    const RgbImage scene = generateColorScene(48, 48, 3);
    const KmeansResult few = kmeansCluster(scene, 2);
    const KmeansResult many = kmeansCluster(scene, 16);
    // More clusters -> better approximation of the original image.
    EXPECT_GT(signalToNoiseDb(scene, many.image),
              signalToNoiseDb(scene, few.image));
}

TEST(KmeansAutomaton, FinalOutputIsBitExact)
{
    const RgbImage scene = generateColorScene(27, 19, 4); // non-pow2
    KmeansConfig config;
    config.clusters = 6;
    config.publishCount = 8;
    const KmeansResult precise = kmeansCluster(scene, config.clusters);

    auto bundle = makeKmeansAutomaton(scene, config);
    const RunOutcome outcome = runToCompletion(*bundle.automaton);

    EXPECT_TRUE(outcome.reachedPrecise);
    EXPECT_TRUE(bundle.output->final());
    EXPECT_EQ(*bundle.output->read().value, precise);
}

TEST(KmeansAutomaton, AssignmentSumsCountEveryPixelOnce)
{
    const RgbImage scene = generateColorScene(20, 20, 5);
    auto bundle = makeKmeansAutomaton(scene);
    runToCompletion(*bundle.automaton);

    const auto snap = bundle.assignment->read();
    ASSERT_TRUE(snap);
    std::uint64_t total = 0;
    for (const ClusterSum &sum : snap.value->sums)
        total += sum.count;
    EXPECT_EQ(total, scene.size());
}

TEST(KmeansAutomaton, IntermediateAssignmentsCoverWholeImage)
{
    // The diffusive assignment stage publishes versions at a fixed
    // period regardless of downstream scheduling, so its version
    // sequence is deterministic (unlike the reduce stage, which may
    // legitimately skip straight to the final assignment on a busy
    // machine — asynchronous-pipeline semantics).
    const RgbImage scene = generateColorScene(64, 64, 6);
    const KmeansResult precise = kmeansCluster(scene, 8);
    const auto seeds = kmeansSeeds(scene, 8);

    KmeansConfig config;
    config.publishCount = 16;
    auto bundle = makeKmeansAutomaton(scene, config);
    std::vector<double> snrs;
    bundle.assignment->addObserver(
        [&](const Snapshot<KmeansAssignment> &snap) {
            // Recolor the (block-filled) labels with the seed palette:
            // every intermediate version must be a whole, plausible
            // clustered image.
            RgbImage preview(snap.value->labels.width(),
                             snap.value->labels.height());
            for (std::size_t i = 0; i < preview.size(); ++i)
                preview[i] = seeds[snap.value->labels[i]];
            snrs.push_back(signalToNoiseDb(scene, preview));
        });
    runToCompletion(*bundle.automaton);

    ASSERT_GE(snrs.size(), 8u);
    EXPECT_GT(snrs.front(), 0.0);
    // The final output buffer holds the exact clustered image.
    EXPECT_EQ(*bundle.output->read().value, precise);
}

} // namespace
} // namespace anytime
