/**
 * @file
 * Tests for the anytime bit-plane matrix multiply (the Figure 6
 * generalization): exactness after all planes, the masked-operand
 * equivalence, MSB-first monotone convergence, and multi-worker
 * commutativity.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include <limits>

#include "apps/matmul.hpp"
#include "core/controller.hpp"
#include "support/rng.hpp"

namespace anytime {
namespace {

IntMatrix
randomMatrix(std::size_t cols, std::size_t rows, std::uint64_t seed,
             std::int32_t span)
{
    IntMatrix m(cols, rows);
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < m.size(); ++i)
        m[i] = static_cast<std::int32_t>(rng.nextBelow(
                   2 * static_cast<std::uint64_t>(span))) -
               span;
    return m;
}

TEST(Matmul, ExactSmallCase)
{
    IntMatrix a(2, 2); // 2x2
    a.at(0, 0) = 1;
    a.at(1, 0) = 2;
    a.at(0, 1) = 3;
    a.at(1, 1) = 4;
    IntMatrix b(2, 2);
    b.at(0, 0) = 5;
    b.at(1, 0) = 6;
    b.at(0, 1) = 7;
    b.at(1, 1) = 8;
    const LongMatrix c = matmulExact(a, b);
    EXPECT_EQ(c.at(0, 0), 19); // 1*5 + 2*7
    EXPECT_EQ(c.at(1, 0), 22);
    EXPECT_EQ(c.at(0, 1), 43);
    EXPECT_EQ(c.at(1, 1), 50);
}

TEST(Matmul, ShapeMismatchRejected)
{
    IntMatrix a(3, 2); // 2x3
    IntMatrix b(2, 2); // 2x2: inner dim 3 != 2
    EXPECT_THROW(matmulExact(a, b), FatalError);
}

TEST(Matmul, TruncatedFullWidthIsExact)
{
    const IntMatrix a = randomMatrix(5, 4, 1, 1000);
    const IntMatrix b = randomMatrix(3, 5, 2, 1000);
    EXPECT_EQ(matmulTruncated(a, b, 32), matmulExact(a, b));
}

TEST(Matmul, TruncationErrorShrinksWithBits)
{
    const IntMatrix a = randomMatrix(8, 8, 3, 100000);
    const IntMatrix b = randomMatrix(8, 8, 4, 100000);
    const LongMatrix exact = matmulExact(a, b);
    double prev = 1e300;
    for (unsigned bits : {8u, 16u, 24u, 32u}) {
        const LongMatrix approx = matmulTruncated(a, b, bits);
        double err = 0;
        for (std::size_t i = 0; i < exact.size(); ++i)
            err += std::abs(static_cast<double>(exact[i] - approx[i]));
        EXPECT_LE(err, prev) << "bits=" << bits;
        prev = err;
    }
    EXPECT_EQ(prev, 0.0);
}

TEST(MatmulAutomaton, FinalOutputIsExact)
{
    const IntMatrix a = randomMatrix(6, 7, 5, 1 << 30);
    const IntMatrix b = randomMatrix(4, 6, 6, 1 << 30);
    auto bundle = makeMatmulAutomaton(a, b);
    const RunOutcome outcome = runToCompletion(*bundle.automaton);
    EXPECT_TRUE(outcome.reachedPrecise);
    EXPECT_EQ(*bundle.output->read().value, matmulExact(a, b));
}

TEST(MatmulAutomaton, NegativeEntriesAreExact)
{
    IntMatrix a(2, 1);
    a.at(0, 0) = -3;
    a.at(1, 0) = 7;
    IntMatrix b(1, 2);
    b.at(0, 0) = std::numeric_limits<std::int32_t>::min(); // sign plane
    b.at(0, 1) = 2147483647;
    auto bundle = makeMatmulAutomaton(a, b);
    runToCompletion(*bundle.automaton);
    EXPECT_EQ(*bundle.output->read().value, matmulExact(a, b));
}

TEST(MatmulAutomaton, VersionsConvergeMsbFirst)
{
    const IntMatrix a = randomMatrix(8, 8, 7, 1000);
    const IntMatrix b = randomMatrix(8, 8, 8, 1 << 20);
    const LongMatrix exact = matmulExact(a, b);

    MatmulConfig config;
    config.planesPerPublish = 4;
    auto bundle = makeMatmulAutomaton(a, b, config);

    std::vector<double> errors;
    bundle.output->addObserver([&](const Snapshot<LongMatrix> &snap) {
        double err = 0;
        for (std::size_t i = 0; i < exact.size(); ++i)
            err += std::abs(
                static_cast<double>(exact[i] - (*snap.value)[i]));
        errors.push_back(err);
    });
    runToCompletion(*bundle.automaton);

    ASSERT_GE(errors.size(), 8u);
    for (std::size_t i = 1; i < errors.size(); ++i)
        EXPECT_LE(errors[i], errors[i - 1]) << "version " << i;
    EXPECT_EQ(errors.back(), 0.0);
}

TEST(MatmulAutomaton, MultiWorkerStillExact)
{
    const IntMatrix a = randomMatrix(8, 6, 9, 1 << 28);
    const IntMatrix b = randomMatrix(5, 8, 10, 1 << 28);
    MatmulConfig config;
    config.workers = 3;
    auto bundle = makeMatmulAutomaton(a, b, config);
    runToCompletion(*bundle.automaton);
    EXPECT_EQ(*bundle.output->read().value, matmulExact(a, b));
}

TEST(MatmulAutomaton, EarlyStopKeepsValidPartialProduct)
{
    const IntMatrix a = randomMatrix(32, 32, 11, 1 << 24);
    const IntMatrix b = randomMatrix(32, 32, 12, 1 << 24);
    auto bundle = makeMatmulAutomaton(a, b);
    bundle.automaton->start();
    while (bundle.output->version() < 4)
        std::this_thread::yield();
    bundle.automaton->stop();
    bundle.automaton->shutdown();
    const auto snap = bundle.output->read();
    ASSERT_TRUE(snap);
    EXPECT_EQ(snap.value->width(), 32u);
    if (snap.final) {
        // The run outpaced the stop request; then it must be exact.
        EXPECT_EQ(*snap.value, matmulExact(a, b));
    } else {
        // Interrupted: the partial product is a valid prefix of the
        // MSB-first plane sequence (some versions were published).
        EXPECT_GE(snap.version, 4u);
    }
}

} // namespace
} // namespace anytime
