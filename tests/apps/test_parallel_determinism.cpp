/**
 * @file
 * Determinism suite for the multi-worker application automatons
 * (Section IV-C1). Each app runs at 1, 2, 4, and 7 workers; the
 * partitioned merge is deterministic, so intra-stage versions must be
 * bit-identical to the single-worker run, and the final output must be
 * the precise baseline result. Covers all three permutation families:
 * tree (conv2d, kmeans assign, histeq apply), LFSR (histeq histogram,
 * both cyclic and block partitions), and sequential (matmul planes).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/conv2d.hpp"
#include "apps/histeq.hpp"
#include "apps/kmeans.hpp"
#include "apps/matmul.hpp"
#include "harness/profiler.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"

namespace anytime {
namespace {

constexpr unsigned kWorkerCounts[] = {1, 2, 4, 7};

/** Record every version of @p buffer while the automaton runs dry. */
template <typename T>
std::vector<typename TimelineRecorder<T>::Entry>
recordRun(Automaton &automaton, VersionedBuffer<T> &buffer)
{
    TimelineRecorder<T> recorder(buffer);
    automaton.start();
    automaton.waitUntilDone();
    automaton.shutdown();
    return recorder.entries();
}

template <typename T>
void
expectSameVersions(
    const std::vector<typename TimelineRecorder<T>::Entry> &reference,
    const std::vector<typename TimelineRecorder<T>::Entry> &versions,
    const char *what, unsigned workers)
{
    ASSERT_EQ(versions.size(), reference.size())
        << what << " workers " << workers;
    for (std::size_t i = 0; i < versions.size(); ++i) {
        EXPECT_EQ(versions[i].version, reference[i].version)
            << what << " workers " << workers << " entry " << i;
        EXPECT_EQ(versions[i].final, reference[i].final)
            << what << " workers " << workers << " entry " << i;
        EXPECT_TRUE(*versions[i].value == *reference[i].value)
            << what << " workers " << workers << " version "
            << versions[i].version << " diverged from single-worker";
    }
}

TEST(ParallelDeterminism, Conv2dTreeSampling)
{
    const GrayImage scene = generateScene(64, 48, 7);
    const Kernel kernel = Kernel::gaussianBlur(2);
    const GrayImage precise = convolve(scene, kernel);

    std::vector<TimelineRecorder<GrayImage>::Entry> reference;
    for (const unsigned workers : kWorkerCounts) {
        Conv2dConfig config;
        config.publishCount = 16;
        config.workers = workers;
        auto bundle = makeConv2dAutomaton(scene, kernel, config);
        const auto versions = recordRun(*bundle.automaton, *bundle.output);
        ASSERT_FALSE(versions.empty());
        EXPECT_TRUE(versions.back().final);
        EXPECT_TRUE(*versions.back().value == precise)
            << "workers " << workers;
        if (workers == 1)
            reference = versions;
        else
            expectSameVersions<GrayImage>(reference, versions, "conv2d",
                                          workers);
    }
}

TEST(ParallelDeterminism, Conv2dIntermediateQualityMonotone)
{
    const GrayImage scene = generateScene(64, 64, 21);
    const Kernel kernel = Kernel::gaussianBlur(2);
    const GrayImage precise = convolve(scene, kernel);

    Conv2dConfig config;
    config.publishCount = 16;
    config.workers = 4;
    auto bundle = makeConv2dAutomaton(scene, kernel, config);
    const auto versions = recordRun(*bundle.automaton, *bundle.output);
    ASSERT_GE(versions.size(), 2u);
    // Tree output sampling refines resolution monotonically; each
    // version must be at least as close to the precise image as the
    // previous one (tiny epsilon for SNR arithmetic noise).
    double previous = -1e9;
    for (const auto &entry : versions) {
        const double snr = signalToNoiseDb(precise, *entry.value);
        EXPECT_GE(snr, previous - 1e-9)
            << "version " << entry.version << " lost quality";
        previous = snr;
    }
}

TEST(ParallelDeterminism, KmeansAssignTreeSampling)
{
    const RgbImage scene = generateColorScene(48, 40, 3);
    constexpr unsigned kClusters = 6;
    const KmeansResult precise = kmeansCluster(scene, kClusters);

    std::vector<TimelineRecorder<KmeansAssignment>::Entry> reference;
    for (const unsigned workers : kWorkerCounts) {
        KmeansConfig config;
        config.clusters = kClusters;
        config.publishCount = 8;
        config.workers = workers;
        auto bundle = makeKmeansAutomaton(scene, config);
        TimelineRecorder<KmeansAssignment> assigns(*bundle.assignment);
        bundle.automaton->start();
        bundle.automaton->waitUntilDone();
        bundle.automaton->shutdown();

        const auto final_result = bundle.output->read();
        ASSERT_TRUE(final_result.final);
        EXPECT_TRUE(*final_result.value == precise)
            << "workers " << workers;

        const auto versions = assigns.entries();
        ASSERT_FALSE(versions.empty());
        if (workers == 1)
            reference = versions;
        else
            expectSameVersions<KmeansAssignment>(reference, versions,
                                                 "kmeans", workers);
    }
}

TEST(ParallelDeterminism, MatmulSequentialBitPlanes)
{
    IntMatrix a(12, 9, 0);
    IntMatrix b(10, 12, 0);
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<std::int32_t>((i * 2654435761u) % 9973) - 4986;
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<std::int32_t>((i * 40503u) % 7919) - 3959;
    const LongMatrix precise = matmulExact(a, b);

    std::vector<TimelineRecorder<LongMatrix>::Entry> reference;
    for (const unsigned workers : kWorkerCounts) {
        MatmulConfig config;
        config.planesPerPublish = 4; // window of 4 commuting planes
        config.workers = workers;
        auto bundle = makeMatmulAutomaton(a, b, config);
        const auto versions = recordRun(*bundle.automaton, *bundle.output);
        ASSERT_FALSE(versions.empty());
        EXPECT_TRUE(versions.back().final);
        EXPECT_TRUE(*versions.back().value == precise)
            << "workers " << workers;
        if (workers == 1)
            reference = versions;
        else
            expectSameVersions<LongMatrix>(reference, versions, "matmul",
                                           workers);
    }
}

TEST(ParallelDeterminism, HisteqLfsrHistogramBothPartitionKinds)
{
    const GrayImage scene = generateScene(56, 42, 13);
    const GrayImage precise = histogramEqualize(scene);

    for (const PartitionKind kind :
         {PartitionKind::block, PartitionKind::cyclic}) {
        std::vector<TimelineRecorder<PixelHistogram>::Entry> reference;
        for (const unsigned workers : kWorkerCounts) {
            HisteqConfig config;
            config.histogramVersions = 6;
            config.applyVersions = 8;
            config.histogramWorkers = workers;
            config.applyWorkers = workers;
            config.histogramPartition = kind;
            auto bundle = makeHisteqAutomaton(scene, config);
            TimelineRecorder<PixelHistogram> hists(*bundle.histogram);
            bundle.automaton->start();
            bundle.automaton->waitUntilDone();
            bundle.automaton->shutdown();

            // The downstream pipeline's version *timing* depends on
            // scheduling, but the histogram stage's sequence and the
            // final equalized image are fully deterministic.
            const auto final_image = bundle.output->read();
            ASSERT_TRUE(final_image.final);
            EXPECT_TRUE(*final_image.value == precise)
                << partitionKindName(kind) << " workers " << workers;

            const auto versions = hists.entries();
            ASSERT_FALSE(versions.empty());
            if (workers == 1)
                reference = versions;
            else
                expectSameVersions<PixelHistogram>(
                    reference, versions, partitionKindName(kind), workers);
        }
    }
}

} // namespace
} // namespace anytime
