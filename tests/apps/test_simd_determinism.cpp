/**
 * @file
 * Scalar-vs-SIMD determinism for the application automatons. The
 * vectorized kernels are specifications of the exact arithmetic, so a
 * forced-scalar run and a run on the best ISA the host supports must
 * publish bit-identical version timelines — at one worker and several,
 * across all three permutation families: tree (conv2d, kmeans assign),
 * LFSR (histeq histogram, both partition kinds), and sequential
 * (matmul and reduced-precision conv2d bit planes).
 *
 * On hosts without any vector ISA both runs use the scalar table and
 * the suite degenerates to a (still valid) self-consistency check.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/conv2d.hpp"
#include "apps/dwt53.hpp"
#include "apps/histeq.hpp"
#include "apps/kmeans.hpp"
#include "apps/matmul.hpp"
#include "harness/profiler.hpp"
#include "image/generate.hpp"
#include "simd/simd.hpp"

namespace anytime {
namespace {

using simd::Isa;

constexpr unsigned kWorkerCounts[] = {1, 3};

/** Restore automatic dispatch after each forced run. */
struct IsaGuard
{
    ~IsaGuard() { simd::resetIsa(); }
};

template <typename T>
std::vector<typename TimelineRecorder<T>::Entry>
recordRun(Automaton &automaton, VersionedBuffer<T> &buffer)
{
    TimelineRecorder<T> recorder(buffer);
    automaton.start();
    automaton.waitUntilDone();
    automaton.shutdown();
    return recorder.entries();
}

template <typename T>
void
expectSameVersions(
    const std::vector<typename TimelineRecorder<T>::Entry> &reference,
    const std::vector<typename TimelineRecorder<T>::Entry> &versions,
    const char *what, unsigned workers)
{
    ASSERT_EQ(versions.size(), reference.size())
        << what << " workers " << workers;
    for (std::size_t i = 0; i < versions.size(); ++i) {
        EXPECT_EQ(versions[i].version, reference[i].version)
            << what << " workers " << workers << " entry " << i;
        EXPECT_EQ(versions[i].final, reference[i].final)
            << what << " workers " << workers << " entry " << i;
        EXPECT_TRUE(*versions[i].value == *reference[i].value)
            << what << " workers " << workers << " version "
            << versions[i].version << " diverged from scalar";
    }
}

/**
 * Run @p build + record under forced-scalar dispatch, then under the
 * best supported ISA, and require identical timelines.
 */
template <typename T, typename MakeBundle>
void
compareScalarAgainstBest(MakeBundle make, const char *what,
                         unsigned workers)
{
    IsaGuard guard;
    simd::forceIsa(Isa::scalar);
    std::vector<typename TimelineRecorder<T>::Entry> reference;
    {
        auto bundle = make();
        reference = recordRun<T>(*bundle.automaton, *bundle.output);
    }
    ASSERT_FALSE(reference.empty()) << what;
    ASSERT_TRUE(reference.back().final) << what;

    simd::forceIsa(simd::bestSupportedIsa());
    auto bundle = make();
    const auto versions = recordRun<T>(*bundle.automaton, *bundle.output);
    expectSameVersions<T>(reference, versions, what, workers);
}

TEST(SimdDeterminism, Conv2dTreeSampling)
{
    const GrayImage scene = generateScene(64, 48, 7);
    const Kernel kernel = Kernel::gaussianBlur(2);
    for (const unsigned workers : kWorkerCounts) {
        compareScalarAgainstBest<GrayImage>(
            [&] {
                Conv2dConfig config;
                config.publishCount = 16;
                config.workers = workers;
                return makeConv2dAutomaton(scene, kernel, config);
            },
            "conv2d", workers);
    }
}

TEST(SimdDeterminism, Conv2dReducedPrecisionDigitElision)
{
    const GrayImage scene = generateScene(48, 40, 19);
    const Kernel kernel = Kernel::gaussianBlur(2);
    for (const unsigned precision : {2u, 4u, 6u}) {
        for (const unsigned workers : kWorkerCounts) {
            compareScalarAgainstBest<GrayImage>(
                [&] {
                    Conv2dConfig config;
                    config.publishCount = 8;
                    config.workers = workers;
                    config.precisionBits = precision;
                    return makeConv2dAutomaton(scene, kernel, config);
                },
                "conv2d-quantized", workers);
        }
    }
}

TEST(SimdDeterminism, KmeansAssignTreeSampling)
{
    const RgbImage scene = generateColorScene(48, 40, 3);
    for (const unsigned workers : kWorkerCounts) {
        IsaGuard guard;
        auto make = [&] {
            KmeansConfig config;
            config.clusters = 6;
            config.publishCount = 8;
            config.workers = workers;
            return makeKmeansAutomaton(scene, config);
        };
        simd::forceIsa(Isa::scalar);
        std::vector<TimelineRecorder<KmeansAssignment>::Entry> reference;
        KmeansResult scalar_final;
        {
            auto bundle = make();
            TimelineRecorder<KmeansAssignment> assigns(*bundle.assignment);
            bundle.automaton->start();
            bundle.automaton->waitUntilDone();
            bundle.automaton->shutdown();
            reference = assigns.entries();
            scalar_final = *bundle.output->read().value;
        }
        ASSERT_FALSE(reference.empty());

        simd::forceIsa(simd::bestSupportedIsa());
        auto bundle = make();
        TimelineRecorder<KmeansAssignment> assigns(*bundle.assignment);
        bundle.automaton->start();
        bundle.automaton->waitUntilDone();
        bundle.automaton->shutdown();
        expectSameVersions<KmeansAssignment>(reference, assigns.entries(),
                                             "kmeans", workers);
        EXPECT_TRUE(*bundle.output->read().value == scalar_final)
            << "workers " << workers;
    }
}

TEST(SimdDeterminism, MatmulSequentialBitPlanes)
{
    IntMatrix a(12, 9, 0);
    IntMatrix b(10, 12, 0);
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<std::int32_t>((i * 2654435761u) % 9973) - 4986;
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<std::int32_t>((i * 40503u) % 7919) - 3959;
    for (const unsigned workers : kWorkerCounts) {
        compareScalarAgainstBest<LongMatrix>(
            [&] {
                MatmulConfig config;
                config.planesPerPublish = 4;
                config.workers = workers;
                return makeMatmulAutomaton(a, b, config);
            },
            "matmul", workers);
    }
}

TEST(SimdDeterminism, HisteqLfsrHistogramBothPartitionKinds)
{
    const GrayImage scene = generateScene(56, 42, 13);
    for (const PartitionKind kind :
         {PartitionKind::block, PartitionKind::cyclic}) {
        for (const unsigned workers : kWorkerCounts) {
            IsaGuard guard;
            auto make = [&] {
                HisteqConfig config;
                config.histogramVersions = 6;
                config.applyVersions = 8;
                config.histogramWorkers = workers;
                config.applyWorkers = workers;
                config.histogramPartition = kind;
                return makeHisteqAutomaton(scene, config);
            };
            simd::forceIsa(Isa::scalar);
            std::vector<TimelineRecorder<PixelHistogram>::Entry> reference;
            GrayImage scalar_final;
            {
                auto bundle = make();
                TimelineRecorder<PixelHistogram> hists(*bundle.histogram);
                bundle.automaton->start();
                bundle.automaton->waitUntilDone();
                bundle.automaton->shutdown();
                reference = hists.entries();
                scalar_final = *bundle.output->read().value;
            }
            ASSERT_FALSE(reference.empty());

            simd::forceIsa(simd::bestSupportedIsa());
            auto bundle = make();
            TimelineRecorder<PixelHistogram> hists(*bundle.histogram);
            bundle.automaton->start();
            bundle.automaton->waitUntilDone();
            bundle.automaton->shutdown();
            expectSameVersions<PixelHistogram>(reference, hists.entries(),
                                               partitionKindName(kind),
                                               workers);
            EXPECT_TRUE(*bundle.output->read().value == scalar_final)
                << partitionKindName(kind) << " workers " << workers;
        }
    }
}

TEST(SimdDeterminism, Dwt53RoundTripAcrossIsas)
{
    IsaGuard guard;
    const GrayImage scene = generateScene(57, 33, 5);
    simd::forceIsa(Isa::scalar);
    const WaveletImage scalar_forward = dwt53Forward(scene);
    const GrayImage scalar_back = dwt53Inverse(scalar_forward);
    simd::forceIsa(simd::bestSupportedIsa());
    const WaveletImage vector_forward = dwt53Forward(scene);
    EXPECT_TRUE(vector_forward == scalar_forward);
    EXPECT_TRUE(dwt53Inverse(vector_forward) == scalar_back);
    EXPECT_TRUE(dwt53Inverse(vector_forward) == scene);
}

} // namespace
} // namespace anytime
