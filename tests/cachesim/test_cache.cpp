/**
 * @file
 * Tests for the cache model and the permutation-aware prefetcher
 * (paper Section IV-C3): cold/capacity/conflict behavior, LRU
 * replacement, and the headline claim — a deterministic-permutation
 * prefetcher eliminates the demand misses of non-sequential sampling.
 */

#include <gtest/gtest.h>

#include "cachesim/cache.hpp"
#include "sampling/lfsr_permutation.hpp"
#include "sampling/tree_permutation.hpp"

namespace anytime {
namespace {

TEST(CacheModel, ValidatesGeometry)
{
    EXPECT_THROW(CacheModel({1024, 48, 4}), FatalError);  // non-pow2 line
    EXPECT_THROW(CacheModel({1024, 64, 0}), FatalError);  // zero ways
    EXPECT_THROW(CacheModel({1000, 64, 4}), FatalError);  // ragged size
    EXPECT_NO_THROW(CacheModel({1024, 64, 4}));
}

TEST(CacheModel, ColdMissThenHit)
{
    CacheModel cache({1024, 64, 2});
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_TRUE(cache.access(63)); // same line
    EXPECT_FALSE(cache.access(64)); // next line
    EXPECT_EQ(cache.stats().accesses, 4u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(CacheModel, LruEvictionWithinSet)
{
    // 2-way, 8 sets of 64B lines: lines 0, 8, 16 map to set 0.
    CacheModel cache({1024, 64, 2});
    cache.access(0 * 64);
    cache.access(8 * 64);
    cache.access(0 * 64);  // line 0 is now MRU
    cache.access(16 * 64); // evicts line 8 (LRU)
    EXPECT_TRUE(cache.resident(0 * 64));
    EXPECT_FALSE(cache.resident(8 * 64));
    EXPECT_TRUE(cache.resident(16 * 64));
}

TEST(CacheModel, SequentialSweepMissesOncePerLine)
{
    CacheModel cache({32 * 1024, 64, 8});
    const std::size_t bytes = 16 * 1024; // fits
    for (std::size_t address = 0; address < bytes; ++address)
        cache.access(address);
    EXPECT_EQ(cache.stats().misses, bytes / 64);
    EXPECT_DOUBLE_EQ(cache.stats().missRate(),
                     1.0 / 64.0);
}

TEST(CacheModel, CapacityThrashing)
{
    // Sweeping 4x the capacity twice: the second sweep still misses
    // every line (LRU on a looping pattern keeps evicting ahead).
    CacheModel cache({4 * 1024, 64, 4});
    const std::size_t bytes = 16 * 1024;
    for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t address = 0; address < bytes; address += 64)
            cache.access(address);
    }
    EXPECT_EQ(cache.stats().misses, 2 * bytes / 64);
}

TEST(CacheModel, ResetClearsStateAndStats)
{
    CacheModel cache({1024, 64, 2});
    cache.access(0);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_FALSE(cache.resident(0));
}

TEST(CacheModel, PrefetchFillsWithoutDemandAccounting)
{
    CacheModel cache({1024, 64, 2});
    cache.prefetch(128);
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_EQ(cache.stats().prefetchFills, 1u);
    EXPECT_TRUE(cache.resident(128));
    EXPECT_TRUE(cache.access(128));
    EXPECT_EQ(cache.stats().prefetchHits, 1u);
    // Re-prefetching a resident line is a no-op.
    cache.prefetch(128);
    EXPECT_EQ(cache.stats().prefetchFills, 1u);
}

/** Miss rate of sweeping n 1-byte elements in permutation order. */
CacheStats
sweep(const Permutation &perm, bool with_prefetcher,
      unsigned distance = 8,
      CacheConfig config = CacheConfig{8 * 1024, 64, 4})
{
    CacheModel cache(config); // far smaller than the array
    PermutationPrefetcher prefetcher(cache, perm, 0, 1, distance);
    for (std::uint64_t i = 0; i < perm.size(); ++i) {
        if (with_prefetcher)
            prefetcher.onSample(i ? i - 1 : 0);
        cache.access(perm.map(i));
    }
    return cache.stats();
}

TEST(PermutationPrefetcher, TwoDimTreeSweepMissesCollapse)
{
    // Array (256 KiB) >> cache (32 KiB), so the sweep cannot just fit.
    TreePermutation perm = TreePermutation::twoDim(512, 512);
    const CacheConfig config{32 * 1024, 64, 8}; // 64 sets: conflict-free
    const CacheStats without = sweep(perm, false, 8, config);
    const CacheStats with = sweep(perm, true, 8, config);
    // The tree order revisits lines at wide strides: misses abound
    // without help.
    EXPECT_GT(without.missRate(), 0.4);
    // The deterministic prefetcher runs ahead of the demand stream and
    // removes nearly all demand misses (paper §IV-C3). Each prefetched
    // line is credited once, on its first demand hit.
    EXPECT_LT(with.missRate(), 0.02);
    EXPECT_GT(with.prefetchHits, 0u);
    EXPECT_LT(with.misses, without.misses / 20);
}

TEST(PermutationPrefetcher, OneDimTreeNeedsAssociativity)
{
    // Pathology worth pinning down: consecutive 1-D bit-reverse samples
    // differ only in high address bits, so they map to the SAME cache
    // set; a distance-8 prefetch overwhelms a 4-way set and the lines
    // are evicted before the demand stream arrives. With enough
    // associativity (or, equivalently, set-hashing hardware) the
    // prefetcher works as intended — the paper's "minimal complexity"
    // claim implicitly assumes the prefetch buffer is conflict-free.
    TreePermutation perm = TreePermutation::oneDim(64 * 1024);
    const CacheStats low_assoc =
        sweep(perm, true, 8, CacheConfig{8 * 1024, 64, 4});
    EXPECT_GT(low_assoc.missRate(), 0.5) << "conflict pathology gone?";

    const CacheStats full_assoc =
        sweep(perm, true, 8, CacheConfig{8 * 1024, 64, 128});
    EXPECT_LT(full_assoc.missRate(), 0.02);
}

TEST(PermutationPrefetcher, LfsrSweepMissesCollapse)
{
    LfsrPermutation perm(64 * 1024, 3);
    const CacheStats without = sweep(perm, false);
    const CacheStats with = sweep(perm, true);
    EXPECT_GT(without.missRate(), 0.5);
    EXPECT_LT(with.missRate(), 0.02);
}

TEST(PermutationPrefetcher, SequentialSweepAlreadyFine)
{
    SequentialPermutation perm(64 * 1024);
    const CacheStats without = sweep(perm, false);
    EXPECT_LE(without.missRate(), 1.0 / 64.0 + 1e-9);
}

TEST(PermutationPrefetcher, ValidatesArguments)
{
    CacheModel cache({1024, 64, 2});
    SequentialPermutation perm(16);
    EXPECT_THROW(PermutationPrefetcher(cache, perm, 0, 1, 0),
                 FatalError);
    EXPECT_THROW(PermutationPrefetcher(cache, perm, 0, 0, 1),
                 FatalError);
}

} // namespace
} // namespace anytime
