/**
 * @file
 * Core chaos suite: every injection mode (throw, stall, corrupt,
 * overrun) against a partitioned diffusive automaton at 1, 2, and 4
 * workers. The contract under fault is the paper's anytime guarantee
 * read as fault tolerance: the automaton always terminates with a
 * valid output in every buffer, and every version NOT touched by a
 * fault is bit-identical to the fault-free run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/automaton.hpp"
#include "core/parallel_stage.hpp"
#include "core/transform_stage.hpp"
#include "core/worker_pool.hpp"
#include "fault/fault.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

struct Recorded
{
    std::uint64_t version;
    std::uint64_t value;
    bool final;
    bool degraded;
};

struct RunResult
{
    std::vector<Recorded> versions;
    bool failed = false;
    bool degraded = false;
    bool complete = false;
    bool bufferFinal = false;
    std::vector<std::string> quarantined;
};

constexpr std::uint64_t kSteps = 48;
constexpr std::uint64_t kWindow = 6;

/** The sum automaton from the determinism suite, chaos-instrumented. */
RunResult
runSum(unsigned workers, std::chrono::nanoseconds stall_timeout =
                             std::chrono::nanoseconds::zero())
{
    Automaton automaton;
    automaton.setFaultPolicy(FaultPolicy::quarantine);
    auto out = automaton.makeBuffer<std::uint64_t>("sum.out");
    std::mutex mutex;
    RunResult result;
    out->addObserver([&](const Snapshot<std::uint64_t> &snapshot) {
        std::lock_guard lock(mutex);
        result.versions.push_back({snapshot.version, *snapshot.value,
                                   snapshot.final, snapshot.degraded});
    });
    SweepLayout layout;
    layout.steps = kSteps;
    layout.window = kWindow;
    layout.kind = PartitionKind::cyclic;
    layout.checkpointStride = 1;
    layout.stallTimeout = stall_timeout;
    auto stage = std::make_shared<
        PartitionedDiffusiveStage<std::uint64_t, std::uint64_t>>(
        "sum", out, std::uint64_t{0}, layout,
        [] { return std::uint64_t{0}; },
        [](std::uint64_t &partial) { partial = 0; },
        [](std::uint64_t step, std::uint64_t &partial, StageContext &) {
            partial += step * step + 1;
        },
        [](std::uint64_t &state, std::vector<std::uint64_t> &partials,
           std::uint64_t, std::uint64_t) {
            for (const std::uint64_t partial : partials)
                state += partial;
        });
    automaton.addStage(std::move(stage), workers);
    automaton.start();
    // Generous bound: chaos runs must terminate, never hang.
    EXPECT_TRUE(automaton.waitUntilDone(30s));
    automaton.shutdown();
    result.failed = automaton.failed();
    result.degraded = automaton.degraded();
    result.complete = automaton.complete();
    result.bufferFinal = out->final();
    result.quarantined = automaton.quarantinedStages();
    return result;
}

/** Versions not flagged degraded must match the fault-free run. */
void
expectCleanPrefixBitIdentical(const RunResult &chaos,
                              const RunResult &reference)
{
    for (const Recorded &recorded : chaos.versions) {
        if (recorded.degraded)
            continue;
        ASSERT_LE(recorded.version, reference.versions.size());
        const Recorded &expected =
            reference.versions[recorded.version - 1];
        EXPECT_EQ(recorded.value, expected.value)
            << "version " << recorded.version;
    }
}

class ChaosCoreTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!ANYTIME_FAULTS_ENABLED)
            GTEST_SKIP() << "built with ANYTIME_FAULTS=OFF";
    }
    void TearDown() override { fault::FaultInjector::disarm(); }
};

TEST_F(ChaosCoreTest, ThrowModeQuarantinesAndTerminatesDegraded)
{
    const RunResult reference = runSum(1);
    ASSERT_FALSE(reference.failed);
    ASSERT_TRUE(reference.complete);
    for (const unsigned workers : {1u, 2u, 4u}) {
        // Fire on a mid-sweep checkpoint so some clean versions exist.
        fault::FaultInjector::arm(
            fault::FaultPlan::parse("stage.body:sum=throw@20"));
        const RunResult chaos = runSum(workers);
        fault::FaultInjector::disarm();

        EXPECT_TRUE(chaos.failed) << "workers " << workers;
        EXPECT_TRUE(chaos.degraded) << "workers " << workers;
        EXPECT_FALSE(chaos.complete) << "workers " << workers;
        // Degradation contract: the buffer still reached a terminal
        // state — the last good version, closed degraded.
        EXPECT_TRUE(chaos.bufferFinal) << "workers " << workers;
        ASSERT_EQ(chaos.quarantined.size(), 1u) << "workers " << workers;
        EXPECT_EQ(chaos.quarantined[0], "sum");
        expectCleanPrefixBitIdentical(chaos, reference);
    }
}

TEST_F(ChaosCoreTest, StallModeWatchdogExpelsAndGangCompletes)
{
    const RunResult reference = runSum(1);
    for (const unsigned workers : {2u, 4u}) {
        // One worker sleeps 400 ms mid-window; the 40 ms watchdog
        // expels it and the surviving gang finishes every window.
        fault::FaultInjector::arm(
            fault::FaultPlan::parse("stage.body:sum=stall@20:400"));
        const RunResult chaos = runSum(workers, 40ms);
        fault::FaultInjector::disarm();

        EXPECT_FALSE(chaos.failed) << "workers " << workers;
        EXPECT_TRUE(chaos.degraded) << "workers " << workers;
        EXPECT_TRUE(chaos.bufferFinal) << "workers " << workers;
        EXPECT_TRUE(chaos.quarantined.empty());
        // Clean (pre-expulsion) versions are bit-identical; versions
        // merged without the expelled partition are flagged degraded.
        expectCleanPrefixBitIdentical(chaos, reference);
        bool sawDegraded = false;
        for (const Recorded &recorded : chaos.versions)
            sawDegraded = sawDegraded || recorded.degraded;
        EXPECT_TRUE(sawDegraded) << "workers " << workers;
    }
}

TEST_F(ChaosCoreTest, StallWithoutWatchdogOnlyDelays)
{
    // No watchdog armed: the stall is absorbed as latency, the result
    // stays precise and every version is bit-identical.
    const RunResult reference = runSum(1);
    for (const unsigned workers : {1u, 2u, 4u}) {
        fault::FaultInjector::arm(
            fault::FaultPlan::parse("stage.body:sum=stall@10:50"));
        const RunResult chaos = runSum(workers);
        fault::FaultInjector::disarm();
        EXPECT_FALSE(chaos.failed);
        EXPECT_FALSE(chaos.degraded);
        EXPECT_TRUE(chaos.complete);
        ASSERT_EQ(chaos.versions.size(), reference.versions.size());
        expectCleanPrefixBitIdentical(chaos, reference);
    }
}

TEST_F(ChaosCoreTest, CorruptModeScramblesExactlyTheTargetVersion)
{
    const RunResult reference = runSum(1);
    for (const unsigned workers : {1u, 2u, 4u}) {
        // Corrupt the 3rd approximate publish of sum.out.
        fault::FaultInjector::arm(fault::FaultPlan::parse(
            "seed=13, publish:sum.out=corrupt@3"));
        const RunResult chaos = runSum(workers);
        fault::FaultInjector::disarm();

        EXPECT_FALSE(chaos.failed);
        EXPECT_TRUE(chaos.complete); // corruption is in-flight only
        ASSERT_EQ(chaos.versions.size(), reference.versions.size());
        for (std::size_t i = 0; i < chaos.versions.size(); ++i) {
            if (chaos.versions[i].version == 3) {
                EXPECT_NE(chaos.versions[i].value,
                          reference.versions[i].value)
                    << "workers " << workers;
            } else {
                EXPECT_EQ(chaos.versions[i].value,
                          reference.versions[i].value)
                    << "workers " << workers << " version " << i + 1;
            }
        }
        // The final (precise) version is never corrupted.
        EXPECT_TRUE(chaos.versions.back().final);
        EXPECT_EQ(chaos.versions.back().value,
                  reference.versions.back().value);
    }
}

TEST_F(ChaosCoreTest, OverrunModeDelaysButStaysPrecise)
{
    const RunResult reference = runSum(1);
    for (const unsigned workers : {1u, 2u, 4u}) {
        // Overrun on the leader merge: blows the window's time budget
        // while the gang is parked at the barrier.
        fault::FaultInjector::arm(
            fault::FaultPlan::parse("sweep.merge:sum=overrun@2x2:30"));
        const RunResult chaos = runSum(workers);
        fault::FaultInjector::disarm();
        EXPECT_FALSE(chaos.failed);
        EXPECT_FALSE(chaos.degraded);
        EXPECT_TRUE(chaos.complete);
        ASSERT_EQ(chaos.versions.size(), reference.versions.size());
        expectCleanPrefixBitIdentical(chaos, reference);
    }
}

TEST_F(ChaosCoreTest, StopAllPolicyStillStopsEverything)
{
    // The historical policy is untouched by the containment work: a
    // throwing stage stops the pipeline, buffers keep their last
    // versions, nothing is marked final.
    fault::FaultInjector::arm(
        fault::FaultPlan::parse("stage.body:sum=throw@8"));
    Automaton automaton; // default policy: stopAll
    auto out = automaton.makeBuffer<std::uint64_t>("sum.out");
    SweepLayout layout;
    layout.steps = kSteps;
    layout.window = kWindow;
    layout.checkpointStride = 1;
    auto stage = std::make_shared<
        PartitionedDiffusiveStage<std::uint64_t, std::uint64_t>>(
        "sum", out, std::uint64_t{0}, layout,
        [] { return std::uint64_t{0}; },
        [](std::uint64_t &partial) { partial = 0; },
        [](std::uint64_t, std::uint64_t &partial, StageContext &) {
            partial += 1;
        },
        [](std::uint64_t &state, std::vector<std::uint64_t> &partials,
           std::uint64_t, std::uint64_t) {
            for (const std::uint64_t partial : partials)
                state += partial;
        });
    automaton.addStage(std::move(stage), 2);
    automaton.start();
    EXPECT_TRUE(automaton.waitUntilDone(30s));
    automaton.shutdown();
    fault::FaultInjector::disarm();
    EXPECT_TRUE(automaton.failed());
    EXPECT_TRUE(automaton.quarantinedStages().empty());
    EXPECT_FALSE(out->final());
}

TEST_F(ChaosCoreTest, QuarantineCascadesThroughEmptyUpstreamBuffer)
{
    // The source faults before its first publish; its reader can never
    // compute. The cascade must quarantine the reader too so the whole
    // pipeline drains (no hang) with both buffers closed degraded.
    fault::FaultInjector::arm(
        fault::FaultPlan::parse("stage.body:src=throw@1"));
    Automaton automaton;
    automaton.setFaultPolicy(FaultPolicy::quarantine);
    auto mid = automaton.makeBuffer<std::uint64_t>("mid");
    auto out = automaton.makeBuffer<std::uint64_t>("final");
    SweepLayout layout;
    layout.steps = 8;
    layout.window = 4;
    layout.checkpointStride = 1;
    auto source = std::make_shared<
        PartitionedDiffusiveStage<std::uint64_t, std::uint64_t>>(
        "src", mid, std::uint64_t{0}, layout,
        [] { return std::uint64_t{0}; },
        [](std::uint64_t &partial) { partial = 0; },
        [](std::uint64_t, std::uint64_t &partial, StageContext &) {
            partial += 1;
        },
        [](std::uint64_t &state, std::vector<std::uint64_t> &partials,
           std::uint64_t, std::uint64_t) {
            for (const std::uint64_t partial : partials)
                state += partial;
        });
    auto transform = std::make_shared<TransformStage<std::uint64_t,
                                                     std::uint64_t>>(
        "double", mid, out,
        [](const std::uint64_t &value, Emitter<std::uint64_t> &emitter,
           StageContext &) { emitter.emit(value * 2, true); });
    automaton.addStage(std::move(source), 1);
    automaton.addStage(std::move(transform), 1);
    automaton.start();
    EXPECT_TRUE(automaton.waitUntilDone(30s));
    automaton.shutdown();
    fault::FaultInjector::disarm();
    EXPECT_TRUE(automaton.failed());
    EXPECT_TRUE(automaton.degraded());
    EXPECT_TRUE(mid->final());
    EXPECT_TRUE(out->final());
    EXPECT_TRUE(mid->degraded());
    EXPECT_TRUE(out->degraded());
}

TEST_F(ChaosCoreTest, DownstreamFinishesOnQuarantinedUpstreamOutput)
{
    // The source faults after publishing some versions; the reader
    // must finish its transform on the degraded terminal input and
    // close its own buffer final, with the degraded bit propagated.
    fault::FaultInjector::arm(
        fault::FaultPlan::parse("stage.body:src=throw@6"));
    Automaton automaton;
    automaton.setFaultPolicy(FaultPolicy::quarantine);
    auto mid = automaton.makeBuffer<std::uint64_t>("mid");
    auto out = automaton.makeBuffer<std::uint64_t>("final");
    SweepLayout layout;
    layout.steps = 32;
    layout.window = 4;
    layout.checkpointStride = 1;
    auto source = std::make_shared<
        PartitionedDiffusiveStage<std::uint64_t, std::uint64_t>>(
        "src", mid, std::uint64_t{0}, layout,
        [] { return std::uint64_t{0}; },
        [](std::uint64_t &partial) { partial = 0; },
        [](std::uint64_t, std::uint64_t &partial, StageContext &) {
            partial += 1;
        },
        [](std::uint64_t &state, std::vector<std::uint64_t> &partials,
           std::uint64_t, std::uint64_t) {
            for (const std::uint64_t partial : partials)
                state += partial;
        });
    auto transform = std::make_shared<TransformStage<std::uint64_t,
                                                     std::uint64_t>>(
        "double", mid, out,
        [](const std::uint64_t &value, Emitter<std::uint64_t> &emitter,
           StageContext &) { emitter.emit(value * 2, true); });
    automaton.addStage(std::move(source), 1);
    automaton.addStage(std::move(transform), 1);
    automaton.start();
    EXPECT_TRUE(automaton.waitUntilDone(30s));
    automaton.shutdown();
    fault::FaultInjector::disarm();
    EXPECT_TRUE(automaton.failed());
    EXPECT_TRUE(automaton.degraded());
    ASSERT_TRUE(mid->final());
    ASSERT_TRUE(out->final());
    EXPECT_TRUE(mid->degraded());
    // The transform ran on a degraded terminal input: its output
    // carries the propagated degraded bit and the doubled value.
    const auto mid_snapshot = mid->read();
    const auto out_snapshot = out->read();
    ASSERT_TRUE(mid_snapshot.value != nullptr);
    ASSERT_TRUE(out_snapshot.value != nullptr);
    EXPECT_TRUE(out_snapshot.degraded);
    EXPECT_EQ(*out_snapshot.value, *mid_snapshot.value * 2);
}

TEST_F(ChaosCoreTest, PoolDispatchFaultIsAbsorbed)
{
    // A throw at the dispatch site must be absorbed by the pool: the
    // task still runs, nothing leaks, completion counting holds.
    fault::FaultInjector::arm(
        fault::FaultPlan::parse("pool.dispatch=throw@1x3"));
    WorkerPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&] { ++ran; });
    while (pool.tasksCompleted() < 8)
        std::this_thread::sleep_for(1ms);
    pool.shutdown();
    fault::FaultInjector::disarm();
    EXPECT_EQ(ran.load(), 8);
}

} // namespace
} // namespace anytime
