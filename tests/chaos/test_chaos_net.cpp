/**
 * @file
 * Network chaos: the `net.write` fault site severs a client's socket
 * writes mid-stream. The server must treat the severed connection
 * exactly like a voluntary disconnect — cancel the orphaned request,
 * keep the accounting identity, and keep serving new connections once
 * the plan is disarmed.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "fault/fault.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"

namespace anytime::net {
namespace {

using namespace std::chrono_literals;

void
expectAccountingIdentity(const ServiceMetrics &metrics)
{
    EXPECT_EQ(metrics.total(),
              metrics.served() + metrics.shed() + metrics.expired() +
                  metrics.failed() + metrics.cancelled() +
                  metrics.degraded());
}

double
counterValue(const obs::MetricsRegistry &registry,
             const std::string &name)
{
    for (const auto &row : registry.snapshot())
        if (row.name == name)
            return row.value;
    return -1.0;
}

bool
awaitTotal(AnytimeServer &service, std::size_t total,
           std::chrono::milliseconds budget)
{
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start < budget) {
        if (service.metricsSnapshot().total() >= total)
            return true;
        std::this_thread::sleep_for(5ms);
    }
    return service.metricsSnapshot().total() >= total;
}

class ChaosNetTest : public ::testing::Test
{
  protected:
    void TearDown() override { fault::FaultInjector::disarm(); }
};

TEST_F(ChaosNetTest, MidStreamWriteFaultCancelsTheRequest)
{
    if (!ANYTIME_FAULTS_ENABLED)
        GTEST_SKIP() << "built with ANYTIME_FAULTS=OFF";
    // The 3rd write on the (only) connection throws: ACCEPTED and the
    // first version get out, then the stream is severed server-side.
    fault::FaultInjector::arm(
        fault::FaultPlan::parse("net.write=throw@3"));

    obs::MetricsRegistry registry;
    NetServerConfig config;
    config.catalog = std::make_shared<PipelineCatalog>();
    registerCounterPipeline(*config.catalog);
    config.metricsRegistry = &registry;
    config.service.workers = 2;
    NetServer server(std::move(config));

    ClientOptions client;
    client.port = server.port();
    client.timeout = 10000ms;
    RequestFrame request;
    request.pipeline = "counter";
    request.input = "8000:1000:100"; // ~8 s, publishing every 100 ms
    request.deadlineMicros = 30000000;

    const auto started = std::chrono::steady_clock::now();
    const auto result = runRequest(client, request);
    // The client observes a dead stream, not a DONE frame.
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.done.has_value());

    // Server side: the severed write closed the connection, which
    // cancelled the orphaned request well before its ~8 s runtime.
    ASSERT_TRUE(awaitTotal(server.service(), 1, 5000ms));
    EXPECT_LT(std::chrono::steady_clock::now() - started, 6s);
    const ServiceMetrics metrics = server.service().metricsSnapshot();
    EXPECT_EQ(metrics.total(), 1u);
    EXPECT_EQ(metrics.cancelled(), 1u);
    expectAccountingIdentity(metrics);
    EXPECT_GE(
        counterValue(registry, "anytime_net_write_faults_total"), 1.0);

    // Disarmed, the same server keeps serving: containment, not
    // collapse.
    fault::FaultInjector::disarm();
    request.input = "32:200:8";
    request.deadlineMicros = 5000000;
    const auto retry = runRequest(client, request);
    ASSERT_TRUE(retry.ok) << retry.error;
    ASSERT_TRUE(retry.done.has_value());
    EXPECT_EQ(retry.done->status,
              static_cast<std::uint8_t>(
                  ServiceStatus::preciseCompleted));
}

TEST_F(ChaosNetTest, DrainAnnounceFaultSeversOnlyThatConnection)
{
    if (!ANYTIME_FAULTS_ENABLED)
        GTEST_SKIP() << "built with ANYTIME_FAULTS=OFF";
    // The net.drain site throws while the reactor announces a graceful
    // drain to its (only) open connection: that connection is severed
    // instead of notified, its request cancels through the usual
    // disconnect path, and the drain still runs to completion with the
    // books balanced.
    fault::FaultInjector::arm(
        fault::FaultPlan::parse("net.drain=throw@1"));

    obs::MetricsRegistry registry;
    NetServerConfig config;
    config.catalog = std::make_shared<PipelineCatalog>();
    registerCounterPipeline(*config.catalog);
    config.metricsRegistry = &registry;
    config.service.workers = 2;
    NetServer server(std::move(config));

    ClientOptions client;
    client.port = server.port();
    client.timeout = 10000ms;
    RequestFrame request;
    request.pipeline = "counter";
    request.input = "8000:1000:100"; // ~8 s, publishing every 100 ms
    request.deadlineMicros = 30000000;

    ClientResult result;
    std::thread streamer(
        [&] { result = runRequest(client, request); });
    // Wait for the stream to be live before draining.
    ASSERT_TRUE([&] {
        const auto start = std::chrono::steady_clock::now();
        while (std::chrono::steady_clock::now() - start < 5s) {
            if (server.connectionCount() > 0 &&
                server.service().runningCount() > 0)
                return true;
            std::this_thread::sleep_for(5ms);
        }
        return false;
    }());

    server.drain(2s); // blocks until every connection closed
    streamer.join();

    // The severed client saw a dead stream, not a DONE frame.
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.done.has_value());

    ASSERT_TRUE(awaitTotal(server.service(), 1, 5000ms));
    const ServiceMetrics metrics = server.service().metricsSnapshot();
    EXPECT_EQ(metrics.total(), 1u);
    EXPECT_EQ(metrics.cancelled(), 1u);
    expectAccountingIdentity(metrics);
    EXPECT_EQ(server.connectionCount(), 0u);
}

} // namespace
} // namespace anytime::net
