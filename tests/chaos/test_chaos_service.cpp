/**
 * @file
 * Service-layer chaos suite: build retries with backoff, the circuit
 * breaker, degraded serving after a pipeline fault, and the accounting
 * identity total == served + shed + expired + failed + cancelled +
 * degraded under injected failures.
 *
 * The circuit-breaker tests use a plain always-throwing factory, so
 * they run even when the tree is built with ANYTIME_FAULTS=OFF; the
 * injector-driven tests skip in that configuration.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "service/server.hpp"
#include "service_test_util.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

/** A request whose factory always throws — a permanent build fault. */
ServiceRequest
brokenRequest(std::string name, std::chrono::nanoseconds deadline = 5s)
{
    ServiceRequest request;
    request.name = std::move(name);
    request.deadline = deadline;
    request.factory = []() -> PreparedPipeline {
        throw std::runtime_error("broken pipeline factory");
    };
    return request;
}

void
expectAccountingIdentity(const ServiceMetrics &metrics)
{
    EXPECT_EQ(metrics.total(),
              metrics.served() + metrics.shed() + metrics.expired() +
                  metrics.failed() + metrics.cancelled() +
                  metrics.degraded());
}

class ChaosServiceTest : public ::testing::Test
{
  protected:
    void TearDown() override { fault::FaultInjector::disarm(); }
};

TEST_F(ChaosServiceTest, TransientBuildFaultIsRetriedToSuccess)
{
    if (!ANYTIME_FAULTS_ENABLED)
        GTEST_SKIP() << "built with ANYTIME_FAULTS=OFF";
    // The first build attempt throws; the retry (within the default
    // budget of 2) succeeds and the request completes precise.
    fault::FaultInjector::arm(
        fault::FaultPlan::parse("service.build=throw@1x1"));
    AnytimeServer server({.workers = 1});
    auto future = server.submit(counterRequest("retry", 64, 5, 10s));
    ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
    const ServiceResponse response = future.get();
    EXPECT_EQ(response.status, ServiceStatus::preciseCompleted);
    EXPECT_FALSE(response.degraded);
    server.drain();
    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.served(), 1u);
    EXPECT_EQ(metrics.failed(), 0u);
    expectAccountingIdentity(metrics);
}

TEST_F(ChaosServiceTest, PersistentBuildFaultExhaustsRetriesAndFails)
{
    if (!ANYTIME_FAULTS_ENABLED)
        GTEST_SKIP() << "built with ANYTIME_FAULTS=OFF";
    fault::FaultInjector::arm(
        fault::FaultPlan::parse("service.build=throw@1x16"));
    AnytimeServer server({.workers = 1});
    auto future = server.submit(counterRequest("doomed", 64, 5, 10s));
    ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
    const ServiceResponse response = future.get();
    EXPECT_EQ(response.status, ServiceStatus::failed);
    EXPECT_EQ(response.versionsPublished, 0u);
    server.drain();
    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.failed(), 1u);
    expectAccountingIdentity(metrics);
}

TEST_F(ChaosServiceTest, StageFaultAfterPublishesServesDegraded)
{
    if (!ANYTIME_FAULTS_ENABLED)
        GTEST_SKIP() << "built with ANYTIME_FAULTS=OFF";
    // The pipeline publishes a few versions, then its stage throws.
    // Under the server's default quarantine policy the last good
    // version is salvaged and the response is flagged degraded.
    fault::FaultInjector::arm(
        fault::FaultPlan::parse("stage.body:counter=throw@10"));
    AnytimeServer server({.workers = 1});
    auto probe = std::make_shared<CounterProbe>();
    auto future = server.submit(counterRequest(
        "salvage", 1u << 14, 2, 10s, 0.0, probe, /*publish_period=*/128));
    ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
    const ServiceResponse response = future.get();
    EXPECT_EQ(response.status, ServiceStatus::degraded);
    EXPECT_TRUE(response.degraded);
    EXPECT_TRUE(response.deadlineMet);
    EXPECT_GT(response.versionsPublished, 0u);
    // The salvaged snapshot is a real published version.
    ASSERT_TRUE(probe->out);
    ASSERT_TRUE(probe->out->read().value != nullptr);
    EXPECT_GT(*probe->out->read().value, 0);
    server.drain();
    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.degraded(), 1u);
    EXPECT_EQ(metrics.failed(), 0u);
    expectAccountingIdentity(metrics);
}

TEST_F(ChaosServiceTest, QualityFloorTurnsSalvageIntoFailure)
{
    if (!ANYTIME_FAULTS_ENABLED)
        GTEST_SKIP() << "built with ANYTIME_FAULTS=OFF";
    // Same fault shape, but the client demands near-precise quality:
    // the salvaged version misses the floor, so degraded serving is
    // refused and the request fails fast.
    fault::FaultInjector::arm(
        fault::FaultPlan::parse("stage.body:counter=throw@10"));
    AnytimeServer server({.workers = 1});
    auto future = server.submit(counterRequest(
        "strict", 1u << 14, 2, 10s, 0.99, nullptr,
        /*publish_period=*/128));
    ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
    const ServiceResponse response = future.get();
    EXPECT_EQ(response.status, ServiceStatus::failed);
    EXPECT_FALSE(response.degraded);
    server.drain();
    expectAccountingIdentity(server.metricsSnapshot());
}

TEST(ChaosServiceCircuit, BreakerShedsAfterFailureBudget)
{
    // Pure-C++ permanent build failure: no injector needed, runs in
    // every build configuration. Budget 2, long cooldown: the first
    // two requests burn the budget, the third is shed at submit.
    AnytimeServer server({.workers = 1,
                          .buildRetryLimit = 0,
                          .circuitFailureBudget = 2,
                          .circuitCooldown = 60s});
    for (int i = 0; i < 2; ++i) {
        auto future = server.submit(brokenRequest("flaky"));
        ASSERT_EQ(future.wait_for(5s), std::future_status::ready);
        EXPECT_EQ(future.get().status, ServiceStatus::failed);
    }
    auto shedFuture = server.submit(brokenRequest("flaky"));
    ASSERT_EQ(shedFuture.wait_for(5s), std::future_status::ready);
    EXPECT_EQ(shedFuture.get().status, ServiceStatus::shedCircuitOpen);

    // The breaker is per pipeline: an unrelated healthy pipeline is
    // unaffected while "flaky" is open.
    auto healthy = server.submit(counterRequest("healthy", 64, 5, 10s));
    ASSERT_EQ(healthy.wait_for(10s), std::future_status::ready);
    EXPECT_EQ(healthy.get().status, ServiceStatus::preciseCompleted);

    server.drain();
    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.failed(), 2u);
    EXPECT_EQ(metrics.shed(), 1u); // shed-circuit-open folds into shed
    EXPECT_EQ(metrics.served(), 1u);
    expectAccountingIdentity(metrics);
}

TEST(ChaosServiceCircuit, BreakerHalfOpensAfterCooldown)
{
    AnytimeServer server({.workers = 1,
                          .buildRetryLimit = 0,
                          .circuitFailureBudget = 1,
                          .circuitCooldown = 50ms});
    auto first = server.submit(brokenRequest("blinky"));
    ASSERT_EQ(first.wait_for(5s), std::future_status::ready);
    EXPECT_EQ(first.get().status, ServiceStatus::failed);

    // Open: immediate shed.
    auto shed = server.submit(brokenRequest("blinky"));
    ASSERT_EQ(shed.wait_for(5s), std::future_status::ready);
    EXPECT_EQ(shed.get().status, ServiceStatus::shedCircuitOpen);

    // After the cooldown the breaker half-opens: the probe request is
    // admitted again (and here fails again, re-opening the circuit).
    std::this_thread::sleep_for(80ms);
    auto probe = server.submit(brokenRequest("blinky"));
    ASSERT_EQ(probe.wait_for(5s), std::future_status::ready);
    EXPECT_EQ(probe.get().status, ServiceStatus::failed);

    server.drain();
    expectAccountingIdentity(server.metricsSnapshot());
}

TEST(ChaosServiceCircuit, SuccessClosesTheBreaker)
{
    // One failure, then a success on the same pipeline name: the
    // consecutive-failure count resets, so one more failure does not
    // reach the budget of 2.
    AnytimeServer server({.workers = 1,
                          .buildRetryLimit = 0,
                          .circuitFailureBudget = 2,
                          .circuitCooldown = 60s});
    auto fail1 = server.submit(brokenRequest("mend"));
    ASSERT_EQ(fail1.wait_for(5s), std::future_status::ready);
    EXPECT_EQ(fail1.get().status, ServiceStatus::failed);

    auto ok = server.submit(counterRequest("mend", 64, 5, 10s));
    ASSERT_EQ(ok.wait_for(10s), std::future_status::ready);
    EXPECT_EQ(ok.get().status, ServiceStatus::preciseCompleted);

    auto fail2 = server.submit(brokenRequest("mend"));
    ASSERT_EQ(fail2.wait_for(5s), std::future_status::ready);
    // Still failed (admitted), not shed: the breaker was reset.
    EXPECT_EQ(fail2.get().status, ServiceStatus::failed);

    server.drain();
    expectAccountingIdentity(server.metricsSnapshot());
}

TEST_F(ChaosServiceTest, BrownoutTransitionFaultIsFailStatic)
{
    if (!ANYTIME_FAULTS_ENABLED)
        GTEST_SKIP() << "built with ANYTIME_FAULTS=OFF";
    // The first brownout level transition throws at the
    // service.brownout fault site. Fail-static means the transition is
    // aborted but nothing else breaks: the pressure signal persists, a
    // later evaluation retries the move, and the level still climbs
    // while requests keep being served.
    fault::FaultInjector::arm(
        fault::FaultPlan::parse("service.brownout=throw@1"));
    ServerConfig config;
    config.workers = 1;
    config.maxQueueDepth = 4;
    config.brownout.enabled = true;
    config.brownout.evalInterval = 1ms;
    config.brownout.enterHysteresis = 1;
    config.brownout.exitHysteresis = 1000;
    config.brownout.enterPressure = {0.05, 0.10, 0.15};
    config.brownout.exitPressure = {0.01, 0.02, 0.03};
    AnytimeServer server(config);

    // A runner plus a backlog keeps the queue-fraction pressure above
    // every enter threshold for the whole climb.
    std::vector<std::future<ServiceResponse>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(server.submit(counterRequest(
            "bo" + std::to_string(i), 300, 1000, 30s)));
    const auto start = std::chrono::steady_clock::now();
    while (server.brownoutLevel() < 3 &&
           std::chrono::steady_clock::now() - start < 5s)
        std::this_thread::sleep_for(1ms);
    // The aborted first transition was retried: survival mode reached.
    EXPECT_EQ(server.brownoutLevel(), 3);
    EXPECT_GE(server.brownoutControl().transitions(), 3u);

    for (auto &future : futures)
        ASSERT_EQ(future.wait_for(20s), std::future_status::ready);
    server.drain();
    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.total(), 4u);
    expectAccountingIdentity(metrics);
}

TEST_F(ChaosServiceTest, AccountingIdentityHoldsUnderMixedChaos)
{
    if (!ANYTIME_FAULTS_ENABLED)
        GTEST_SKIP() << "built with ANYTIME_FAULTS=OFF";
    // A mixed workload under injected faults: some builds fail their
    // first attempt (then retry), one pipeline degrades mid-run, and
    // healthy requests flow throughout. Whatever the per-request
    // outcomes, the books must balance.
    fault::FaultInjector::arm(fault::FaultPlan::parse(
        "seed=3, service.build=throw@2x2, stage.body:counter=throw@30"));
    AnytimeServer server({.workers = 2});
    std::vector<std::future<ServiceResponse>> futures;
    for (int i = 0; i < 8; ++i)
        futures.push_back(server.submit(counterRequest(
            "mix" + std::to_string(i), 1u << 12, 2, 10s, 0.0, nullptr,
            /*publish_period=*/128)));
    for (auto &future : futures)
        ASSERT_EQ(future.wait_for(20s), std::future_status::ready);
    server.drain();
    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.total(), 8u);
    expectAccountingIdentity(metrics);
}

} // namespace
} // namespace anytime
