/**
 * @file
 * Unit tests for the deterministic fault injector: plan grammar,
 * describe() round-trips, hit-window matching, corruption-seed
 * determinism, and the armed/disarmed fast path.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/corrupt.hpp"
#include "fault/fault.hpp"
#include "support/error.hpp"

namespace anytime::fault {
namespace {

class FaultInjectorTest : public ::testing::Test
{
  protected:
    void TearDown() override { FaultInjector::disarm(); }
};

TEST_F(FaultInjectorTest, ParsesFullGrammar)
{
    const FaultPlan plan = FaultPlan::parse(
        "seed=42, stage.body:smooth=throw@3x2, pool.dispatch=stall:50,"
        "publish:out=corrupt@5, sweep.merge=overrun");
    EXPECT_EQ(plan.seed, 42u);
    ASSERT_EQ(plan.rules.size(), 4u);

    EXPECT_EQ(plan.rules[0].site, "stage.body:smooth");
    EXPECT_EQ(plan.rules[0].kind, FaultKind::thrown);
    EXPECT_EQ(plan.rules[0].firstHit, 3u);
    EXPECT_EQ(plan.rules[0].count, 2u);

    EXPECT_EQ(plan.rules[1].site, "pool.dispatch");
    EXPECT_EQ(plan.rules[1].kind, FaultKind::stalled);
    EXPECT_EQ(plan.rules[1].delay, std::chrono::milliseconds(50));

    EXPECT_EQ(plan.rules[2].site, "publish:out");
    EXPECT_EQ(plan.rules[2].kind, FaultKind::corrupted);
    EXPECT_EQ(plan.rules[2].firstHit, 5u);

    EXPECT_EQ(plan.rules[3].site, "sweep.merge");
    EXPECT_EQ(plan.rules[3].kind, FaultKind::overrun);
    EXPECT_GT(plan.rules[3].delay.count(), 0);
}

TEST_F(FaultInjectorTest, DescribeRoundTripsThroughParse)
{
    const FaultPlan plan = FaultPlan::parse(
        "seed=7, stage.body:a=throw@2x3, publish:b=corrupt,"
        "pool.dispatch=stall:25");
    const FaultPlan reparsed = FaultPlan::parse(plan.describe());
    EXPECT_EQ(reparsed.describe(), plan.describe());
    EXPECT_EQ(reparsed.seed, plan.seed);
    ASSERT_EQ(reparsed.rules.size(), plan.rules.size());
    for (std::size_t i = 0; i < plan.rules.size(); ++i) {
        EXPECT_EQ(reparsed.rules[i].site, plan.rules[i].site);
        EXPECT_EQ(reparsed.rules[i].kind, plan.rules[i].kind);
        EXPECT_EQ(reparsed.rules[i].firstHit, plan.rules[i].firstHit);
        EXPECT_EQ(reparsed.rules[i].count, plan.rules[i].count);
        EXPECT_EQ(reparsed.rules[i].delay, plan.rules[i].delay);
    }
}

TEST_F(FaultInjectorTest, ParseSkipsCommentsAndBlankLines)
{
    const FaultPlan plan = FaultPlan::parse(
        "# a fault plan file\n"
        "seed=9\n"
        "\n"
        "stage.body=throw@1\n");
    EXPECT_EQ(plan.seed, 9u);
    ASSERT_EQ(plan.rules.size(), 1u);
    EXPECT_EQ(plan.rules[0].kind, FaultKind::thrown);
}

TEST_F(FaultInjectorTest, MalformedSpecsThrowFatalError)
{
    EXPECT_THROW(FaultPlan::parse("stage.body"), FatalError);
    EXPECT_THROW(FaultPlan::parse("stage.body=explode"), FatalError);
    EXPECT_THROW(FaultPlan::parse("=throw"), FatalError);
    EXPECT_THROW(FaultPlan::parse("a=throw@0"), FatalError);
    EXPECT_THROW(FaultPlan::parse("a=throwx0"), FatalError);
    EXPECT_THROW(FaultPlan::parse("a=stall:999999"), FatalError);
    EXPECT_THROW(FaultPlan::parse("seed=banana"), FatalError);
}

TEST_F(FaultInjectorTest, DisarmedFastPathInjectsNothing)
{
    EXPECT_FALSE(FaultInjector::armed());
    // The macro must be a no-op without an armed plan.
    ANYTIME_FAULT_POINT("stage.body", std::string("s"), 1);
    EXPECT_EQ(publishCorruptSeed("anything"), 0u);
}

TEST_F(FaultInjectorTest, ThrowRuleFiresOnExactHitWindow)
{
    if (!ANYTIME_FAULTS_ENABLED)
        GTEST_SKIP() << "built with ANYTIME_FAULTS=OFF";
    FaultInjector::arm(FaultPlan::parse("stage.body:s=throw@3x2"));
    auto &injector = FaultInjector::instance();
    const std::string detail = "s";
    injector.hit("stage.body", detail, 1); // hit 1: no fire
    injector.hit("stage.body", detail, 2); // hit 2: no fire
    EXPECT_THROW(injector.hit("stage.body", detail, 3), StageError);
    EXPECT_THROW(injector.hit("stage.body", detail, 4), StageError);
    injector.hit("stage.body", detail, 5); // window exhausted
    EXPECT_EQ(injector.injectedTotal(), 2u);
}

TEST_F(FaultInjectorTest, BareBaseRuleMatchesEveryDetail)
{
    if (!ANYTIME_FAULTS_ENABLED)
        GTEST_SKIP() << "built with ANYTIME_FAULTS=OFF";
    FaultInjector::arm(FaultPlan::parse("stage.body=throw@1x2"));
    auto &injector = FaultInjector::instance();
    EXPECT_THROW(injector.hit("stage.body", std::string("a"), 1),
                 StageError);
    EXPECT_THROW(injector.hit("stage.body", std::string("b"), 1),
                 StageError);
    // Different base never matches.
    injector.hit("sweep.merge", std::string("a"), 1);
    EXPECT_EQ(injector.injectedTotal(), 2u);
}

TEST_F(FaultInjectorTest, StageErrorCarriesTaxonomy)
{
    if (!ANYTIME_FAULTS_ENABLED)
        GTEST_SKIP() << "built with ANYTIME_FAULTS=OFF";
    FaultInjector::arm(FaultPlan::parse("stage.body:conv=throw"));
    try {
        FaultInjector::instance().hit("stage.body",
                                      std::string("conv"), 17);
        FAIL() << "expected StageError";
    } catch (const StageError &error) {
        EXPECT_EQ(error.kind(), FaultKind::thrown);
        EXPECT_EQ(error.stage(), "conv");
        EXPECT_EQ(error.window(), 17u);
    }
}

TEST_F(FaultInjectorTest, CorruptSeedsAreDeterministicAndWindowed)
{
    if (!ANYTIME_FAULTS_ENABLED)
        GTEST_SKIP() << "built with ANYTIME_FAULTS=OFF";
    const auto run = [] {
        FaultInjector::arm(
            FaultPlan::parse("seed=11, publish:out=corrupt@2x2"));
        auto &injector = FaultInjector::instance();
        std::vector<std::uint64_t> seeds;
        const std::string buffer = "out";
        for (int i = 0; i < 4; ++i)
            seeds.push_back(injector.corruptSeed("publish", buffer));
        FaultInjector::disarm();
        return seeds;
    };
    const auto first = run();
    const auto second = run();
    EXPECT_EQ(first, second); // reproducible across arm cycles
    EXPECT_EQ(first[0], 0u);  // hit 1: outside the window
    EXPECT_NE(first[1], 0u);  // hits 2 and 3: firing
    EXPECT_NE(first[2], 0u);
    EXPECT_NE(first[1], first[2]); // distinct per-hit seeds
    EXPECT_EQ(first[3], 0u);  // window exhausted
}

TEST_F(FaultInjectorTest, CorruptValueScramblesButStaysFinite)
{
    double value = 3.25;
    EXPECT_TRUE(corruptValue(value, mix64(1) | 1));
    EXPECT_NE(value, 3.25);
    EXPECT_TRUE(std::isfinite(value));

    std::vector<float> vec(8, 1.0F);
    EXPECT_TRUE(corruptValue(vec, mix64(2) | 1));
    int changed = 0;
    for (const float element : vec) {
        EXPECT_TRUE(std::isfinite(element));
        if (element != 1.0F)
            ++changed;
    }
    EXPECT_EQ(changed, 1); // exactly one element scrambled

    std::uint32_t word = 7;
    EXPECT_TRUE(corruptValue(word, mix64(3) | 1));
    EXPECT_NE(word, 7u);
}

TEST_F(FaultInjectorTest, ArmedPlanIsIntrospectable)
{
    if (!ANYTIME_FAULTS_ENABLED)
        GTEST_SKIP() << "built with ANYTIME_FAULTS=OFF";
    EXPECT_EQ(FaultInjector::instance().armedPlan(), "");
    FaultInjector::arm(FaultPlan::parse("seed=5, stage.body=throw"));
    EXPECT_NE(FaultInjector::instance().armedPlan().find("stage.body"),
              std::string::npos);
    FaultInjector::disarm();
    EXPECT_EQ(FaultInjector::instance().armedPlan(), "");
    EXPECT_FALSE(FaultInjector::armed());
}

} // namespace
} // namespace anytime::fault
