/**
 * @file
 * End-to-end tests for the Automaton: graph validation (Properties 1-3
 * as checkable invariants), the paper's Figure 1 diamond pipeline, the
 * anytime interruption guarantee, and pause/resume.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/automaton.hpp"
#include "core/source_stage.hpp"
#include "core/transform_stage.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

/** A 100-step diffusive counter source. */
std::shared_ptr<DiffusiveSourceStage<long>>
makeCounter(const std::string &name,
            std::shared_ptr<VersionedBuffer<long>> out,
            std::uint64_t steps = 100, std::uint64_t period = 10)
{
    return std::make_shared<DiffusiveSourceStage<long>>(
        name, std::move(out), 0L, steps,
        [](std::uint64_t, long &state, StageContext &) { state += 1; },
        period, /*batch=*/8);
}

TEST(Automaton, RejectsEmptyAndDoubleStart)
{
    Automaton automaton;
    EXPECT_THROW(automaton.start(), FatalError);
}

TEST(Automaton, RejectsTwoWritersPerBuffer)
{
    Automaton automaton;
    auto buffer = automaton.makeBuffer<long>("shared");
    automaton.addStage(makeCounter("a", buffer));
    automaton.addStage(makeCounter("b", buffer));
    EXPECT_THROW(automaton.start(), FatalError);
}

TEST(Automaton, RejectsReadOfUnwrittenBuffer)
{
    Automaton automaton;
    auto in = automaton.makeBuffer<long>("in");
    auto out = automaton.makeBuffer<long>("out");
    automaton.addStage(makeFunctionStage<long, long>(
        "f", in, out, [](const long &v) { return v; }));
    EXPECT_THROW(automaton.start(), FatalError);
}

TEST(Automaton, AcceptsExternallyPublishedInput)
{
    Automaton automaton;
    auto in = automaton.makeBuffer<long>("in");
    auto out = automaton.makeBuffer<long>("out");
    in->publish(7, true); // external input (e.g., loaded file)
    automaton.addStage(makeFunctionStage<long, long>(
        "f", in, out, [](const long &v) { return v * 6; }));
    automaton.start();
    EXPECT_TRUE(automaton.waitUntilDone(2s));
    automaton.shutdown();
    EXPECT_EQ(*out->read().value, 42);
}

TEST(Automaton, RejectsCycles)
{
    Automaton automaton;
    auto a = automaton.makeBuffer<long>("a");
    auto b = automaton.makeBuffer<long>("b");
    automaton.addStage(makeFunctionStage<long, long>(
        "f", a, b, [](const long &v) { return v; }));
    automaton.addStage(makeFunctionStage<long, long>(
        "g", b, a, [](const long &v) { return v; }));
    EXPECT_THROW(automaton.start(), FatalError);
}

TEST(Automaton, Figure1DiamondReachesPreciseOutput)
{
    // f -> (g, h) -> i, as in the paper's Figure 1.
    Automaton automaton;
    auto f_out = automaton.makeBuffer<long>("f");
    auto g_out = automaton.makeBuffer<long>("g");
    auto h_out = automaton.makeBuffer<long>("h");
    auto i_out = automaton.makeBuffer<long>("i");

    automaton.addStage(makeCounter("f", f_out, 200, 20));
    automaton.addStage(makeFunctionStage<long, long>(
        "g", f_out, g_out, [](const long &v) { return v * 2; }));
    automaton.addStage(makeFunctionStage<long, long>(
        "h", f_out, h_out, [](const long &v) { return v + 1000; }));
    automaton.addStage(makeFunctionStage<long, long, long>(
        "i", g_out, h_out, i_out,
        [](const long &g, const long &h) { return g + h; }));

    automaton.start();
    ASSERT_TRUE(automaton.waitUntilDone(5s));
    automaton.shutdown();

    EXPECT_TRUE(automaton.complete());
    EXPECT_EQ(*i_out->read().value, 200 * 2 + 200 + 1000);
    EXPECT_TRUE(i_out->final());
}

TEST(Automaton, ChildStartsBeforeParentFinishes)
{
    // The pipeline extracts parallelism: g must see a non-final version
    // of f (early availability), not only the final one.
    Automaton automaton;
    auto f_out = automaton.makeBuffer<long>("f");
    auto g_out = automaton.makeBuffer<long>("g");

    auto slow_counter = std::make_shared<DiffusiveSourceStage<long>>(
        "f", f_out, 0L, 50,
        [](std::uint64_t, long &state, StageContext &) {
            state += 1;
            std::this_thread::sleep_for(200us);
        },
        /*publish_period=*/5, /*batch=*/1);
    automaton.addStage(std::move(slow_counter));

    std::atomic<long> first_seen{-1};
    automaton.addStage(std::make_shared<TransformStage<long, long>>(
        "g", f_out, g_out,
        [&](const long &v, Emitter<long> &emitter, StageContext &) {
            long expected = -1;
            first_seen.compare_exchange_strong(expected, v);
            emitter.emit(v, true);
        }));

    automaton.start();
    ASSERT_TRUE(automaton.waitUntilDone(5s));
    automaton.shutdown();

    EXPECT_GT(first_seen.load(), 0);
    EXPECT_LT(first_seen.load(), 50) << "g only ever saw the final f";
    EXPECT_EQ(*g_out->read().value, 50);
}

TEST(Automaton, StopLeavesValidApproximateOutput)
{
    // The anytime property: stopping early keeps the latest published
    // version available and marks nothing final.
    Automaton automaton;
    auto out = automaton.makeBuffer<long>("out");
    automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
        "slow", out, 0L, 1u << 20,
        [](std::uint64_t, long &state, StageContext &) {
            state += 1;
            std::this_thread::sleep_for(10us);
        },
        /*publish_period=*/64, /*batch=*/16));

    automaton.start();
    while (out->version() < 2)
        std::this_thread::yield();
    automaton.stop();
    automaton.shutdown();

    const auto snap = out->read();
    ASSERT_TRUE(snap);
    EXPECT_GT(*snap.value, 0);
    EXPECT_FALSE(snap.final);
    EXPECT_FALSE(automaton.complete());
}

TEST(Automaton, PauseFreezesProgressResumeContinues)
{
    Automaton automaton;
    auto out = automaton.makeBuffer<long>("out");
    automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
        "counter", out, 0L, 1u << 18,
        [](std::uint64_t, long &state, StageContext &) {
            state += 1;
            std::this_thread::sleep_for(5us);
        },
        /*publish_period=*/16, /*batch=*/4));

    automaton.start();
    while (out->version() < 2)
        std::this_thread::yield();
    automaton.pause();
    // Let any in-flight batch drain, then confirm no further progress.
    std::this_thread::sleep_for(20ms);
    const std::uint64_t frozen = out->version();
    std::this_thread::sleep_for(30ms);
    EXPECT_EQ(out->version(), frozen);

    automaton.resume();
    while (out->version() == frozen)
        std::this_thread::yield();
    EXPECT_GT(out->version(), frozen);
    automaton.stop();
    automaton.shutdown();
}

TEST(Automaton, CannotAddStagesAfterStart)
{
    Automaton automaton;
    auto out = automaton.makeBuffer<long>("out");
    automaton.addStage(makeCounter("c", out));
    automaton.start();
    EXPECT_THROW(automaton.addStage(makeCounter("d", out)), FatalError);
    automaton.shutdown();
}

TEST(Automaton, StopWhilePausedReleasesGateAndJoins)
{
    Automaton automaton;
    auto out = automaton.makeBuffer<long>("out");
    automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
        "counter", out, 0L, 1u << 18,
        [](std::uint64_t, long &state, StageContext &) {
            state += 1;
            std::this_thread::sleep_for(5us);
        },
        /*publish_period=*/16, /*batch=*/4));

    automaton.start();
    while (out->version() < 1)
        std::this_thread::yield();
    automaton.pause();
    // Give the workers time to actually block on the pause gate...
    std::this_thread::sleep_for(20ms);
    // ...then stop without resuming first: stop() must release the
    // gate, so the paused workers wake, observe the stop, and exit.
    automaton.stop();
    EXPECT_TRUE(automaton.waitUntilDone(5s)) << "stop on a paused "
        "automaton deadlocked instead of releasing the pause gate";
    automaton.shutdown();
    // The anytime guarantee held throughout: a valid snapshot remains.
    const auto snap = out->read();
    ASSERT_TRUE(snap);
    EXPECT_GT(*snap.value, 0);
    EXPECT_FALSE(automaton.complete());
}

TEST(Automaton, ShutdownWhilePausedJoinsCleanly)
{
    Automaton automaton;
    auto out = automaton.makeBuffer<long>("out");
    automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
        "counter", out, 0L, 1u << 18,
        [](std::uint64_t, long &state, StageContext &) {
            state += 1;
            std::this_thread::sleep_for(5us);
        },
        /*publish_period=*/16, /*batch=*/4));

    automaton.start();
    while (out->version() < 1)
        std::this_thread::yield();
    automaton.pause();
    std::this_thread::sleep_for(10ms);
    // shutdown() = stop() + join: must terminate despite the pause.
    automaton.shutdown();
    EXPECT_TRUE(automaton.waitUntilDone(0ms));
}

TEST(Automaton, StatsAccumulateWork)
{
    Automaton automaton;
    auto out = automaton.makeBuffer<long>("out");
    auto stage = makeCounter("c", out, 128, 32);
    automaton.addStage(stage);
    automaton.start();
    ASSERT_TRUE(automaton.waitUntilDone(2s));
    automaton.shutdown();
    EXPECT_EQ(stage->stats().steps.load(), 128u);
}

} // namespace
} // namespace anytime
