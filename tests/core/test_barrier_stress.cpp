/**
 * @file
 * SweepBarrier stress tests for the fault-containment extensions: the
 * stall watchdog (expel absent workers, timed-out waiter becomes
 * leader), leave()-during-stall interactions, and promote-on-leave
 * under seeded injected delays. Extends the leaderActive regression
 * coverage in test_parallel_stage.cpp.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stop_token>
#include <thread>
#include <vector>

#include "core/parallel_stage.hpp"
#include "fault/fault.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

TEST(SweepBarrierWatchdog, ExpelsStalledWorkerAndElectsLeader)
{
    // Workers 0 and 1 arrive; worker 2 never does. With a stall
    // timeout, a timed-out waiter expels worker 2 and the window
    // completes with exactly one leader among the survivors.
    SweepBarrier barrier(3);
    std::stop_source source;
    std::atomic<int> leaders{0};
    std::atomic<int> released{0};
    std::vector<std::thread> threads;
    for (unsigned w = 0; w < 2; ++w) {
        threads.emplace_back([&, w] {
            const auto outcome =
                barrier.arrive(w, source.get_token(), 30ms);
            if (outcome == SweepBarrier::Outcome::leader) {
                ++leaders;
                barrier.release();
            } else if (outcome == SweepBarrier::Outcome::released) {
                ++released;
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(leaders.load(), 1);
    EXPECT_EQ(released.load(), 1);
    EXPECT_EQ(barrier.expelledCount(), 1u);
    const auto active = barrier.activeWorkers();
    EXPECT_TRUE(active[0]);
    EXPECT_TRUE(active[1]);
    EXPECT_FALSE(active[2]);
}

TEST(SweepBarrierWatchdog, ExpelledWorkerObservesExpulsionAndLeaveIsNoop)
{
    SweepBarrier barrier(2);
    std::stop_source source;
    std::thread waiter([&] {
        EXPECT_EQ(barrier.arrive(0, source.get_token(), 20ms),
                  SweepBarrier::Outcome::leader);
        barrier.release();
    });
    waiter.join();
    ASSERT_EQ(barrier.expelledCount(), 1u);

    // The stalled worker finally shows up: it must learn it was
    // expelled and its leave() must not disturb the gang bookkeeping.
    EXPECT_EQ(barrier.arrive(1, source.get_token()),
              SweepBarrier::Outcome::expelled);
    barrier.leave(1); // no-op
    EXPECT_EQ(barrier.expelledCount(), 1u);

    // The surviving gang of one keeps working.
    for (int window = 0; window < 3; ++window) {
        ASSERT_EQ(barrier.arrive(0, source.get_token(), 20ms),
                  SweepBarrier::Outcome::leader);
        barrier.release();
    }
}

TEST(SweepBarrierWatchdog, LeaveDuringStallWindowPromotesWithoutExpulsion)
{
    // Workers 0 and 1 are blocked with the watchdog armed; worker 2
    // leaves voluntarily well before the timeout. Promote-on-leave
    // must open the barrier — the watchdog never needs to fire and
    // nobody is expelled.
    SweepBarrier barrier(3);
    std::stop_source source;
    std::atomic<int> leaders{0};
    std::atomic<int> done{0};
    std::vector<std::thread> threads;
    for (unsigned w = 0; w < 2; ++w) {
        threads.emplace_back([&, w] {
            const auto outcome =
                barrier.arrive(w, source.get_token(), 500ms);
            EXPECT_NE(outcome, SweepBarrier::Outcome::stopped);
            EXPECT_NE(outcome, SweepBarrier::Outcome::expelled);
            if (outcome == SweepBarrier::Outcome::leader) {
                ++leaders;
                barrier.release();
            }
            ++done;
        });
    }
    std::this_thread::sleep_for(20ms);
    EXPECT_EQ(done.load(), 0);
    barrier.leave(2);
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(done.load(), 2);
    EXPECT_EQ(barrier.expelledCount(), 0u);
}

TEST(SweepBarrierWatchdog, NeverExpelsWhileLeaderIsMerging)
{
    // Regression shape: a waiter is parked with a 150 ms watchdog
    // while the elected leader "merges" for 600 ms — several watchdog
    // periods. The watchdog must hold fire while leaderActive: the
    // leader is not "absent", it is working outside the lock.
    // Symmetric roles keep the election race-free (the last arriver
    // is the leader, whichever thread that is); the watchdog is far
    // above thread-spawn skew, so the pre-election wait never expels.
    SweepBarrier barrier(2);
    std::stop_source source;
    std::atomic<bool> leaderDone{false};
    std::atomic<int> leaders{0};
    std::vector<std::thread> threads;
    for (unsigned w = 0; w < 2; ++w) {
        threads.emplace_back([&, w] {
            const auto outcome =
                barrier.arrive(w, source.get_token(), 150ms);
            if (outcome == SweepBarrier::Outcome::leader) {
                ++leaders;
                std::this_thread::sleep_for(600ms);
                leaderDone = true;
                barrier.release();
            } else {
                EXPECT_EQ(outcome, SweepBarrier::Outcome::released);
                // The leader's release() must precede this wake-up.
                EXPECT_TRUE(leaderDone.load());
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(leaders.load(), 1);
    EXPECT_EQ(barrier.expelledCount(), 0u);
}

TEST(SweepBarrierStress, PromoteOnLeaveUnderInjectedDelays)
{
    // Four workers run many windows with deterministic per-(worker,
    // window) injected delays; each worker leaves the gang for good at
    // a staggered window. Every window must elect exactly one leader
    // among the remaining workers, and leave() must promote any
    // fully-arrived remainder (no hangs). The watchdog timeout is far
    // above the injected delays, so nobody is ever expelled.
    constexpr unsigned kWorkers = 4;
    constexpr int kWindows = 60;
    SweepBarrier barrier(kWorkers);
    std::stop_source source;
    std::vector<std::atomic<int>> leaders(kWindows);
    std::vector<std::thread> threads;
    for (unsigned w = 0; w < kWorkers; ++w) {
        threads.emplace_back([&, w] {
            // Worker w departs after (w+1)/5 of the windows.
            const int myLast = kWindows * static_cast<int>(w + 1) / 5;
            for (int window = 0; window < myLast; ++window) {
                const std::uint64_t jitter =
                    fault::mix64((std::uint64_t{w} << 32) ^
                                 static_cast<std::uint64_t>(window)) %
                    200;
                std::this_thread::sleep_for(
                    std::chrono::microseconds(jitter));
                const auto outcome =
                    barrier.arrive(w, source.get_token(), 2s);
                ASSERT_NE(outcome, SweepBarrier::Outcome::stopped);
                ASSERT_NE(outcome, SweepBarrier::Outcome::expelled);
                if (outcome == SweepBarrier::Outcome::leader) {
                    ++leaders[window];
                    barrier.release();
                }
            }
            barrier.leave(w);
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(barrier.expelledCount(), 0u);
    // Every worker participates in every round until its departure, so
    // local window counters equal global round numbers: each round up
    // to the last worker's departure must elect exactly one leader
    // (never zero — a hang — and never two), and no round runs after.
    const int lastRound = kWindows * static_cast<int>(kWorkers) / 5;
    for (int window = 0; window < kWindows; ++window) {
        EXPECT_EQ(leaders[window].load(), window < lastRound ? 1 : 0)
            << "window " << window;
    }
}

} // namespace
} // namespace anytime
