/**
 * @file
 * Tests for the versioned output buffer: Property 2/3 semantics,
 * version/final bookkeeping, blocking waits, observers, and a
 * concurrent torn-read stress test.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/buffer.hpp"

namespace anytime {
namespace {

TEST(VersionedBuffer, StartsEmpty)
{
    VersionedBuffer<int> buffer("b");
    EXPECT_EQ(buffer.version(), 0u);
    EXPECT_FALSE(buffer.final());
    const Snapshot<int> snap = buffer.read();
    EXPECT_FALSE(snap);
    EXPECT_EQ(snap.version, 0u);
}

TEST(VersionedBuffer, PublishAdvancesVersions)
{
    VersionedBuffer<int> buffer("b");
    buffer.publish(10, false);
    buffer.publish(20, false);
    const Snapshot<int> snap = buffer.read();
    ASSERT_TRUE(snap);
    EXPECT_EQ(*snap.value, 20);
    EXPECT_EQ(snap.version, 2u);
    EXPECT_FALSE(snap.final);
}

TEST(VersionedBuffer, SnapshotsAreImmutable)
{
    VersionedBuffer<std::vector<int>> buffer("b");
    buffer.publish(std::vector<int>{1, 2, 3}, false);
    const auto old = buffer.read();
    buffer.publish(std::vector<int>{9}, true);
    EXPECT_EQ(old.value->size(), 3u); // old snapshot still intact
    EXPECT_EQ(buffer.read().value->size(), 1u);
}

TEST(VersionedBuffer, FinalFlagSticksAndBlocksFurtherPublish)
{
    VersionedBuffer<int> buffer("b");
    buffer.publish(1, true);
    EXPECT_TRUE(buffer.final());
    EXPECT_TRUE(buffer.read().final);
    EXPECT_THROW(buffer.publish(2, false), PanicError);
}

TEST(VersionedBuffer, NullPublishPanics)
{
    VersionedBuffer<int> buffer("b");
    EXPECT_THROW(buffer.publishShared(nullptr, false), PanicError);
}

TEST(VersionedBuffer, WaitNewerReturnsOnPublish)
{
    VersionedBuffer<int> buffer("b");
    std::stop_source source;
    std::thread publisher([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        buffer.publish(5, false);
    });
    const auto snap = buffer.waitNewer(0, source.get_token());
    ASSERT_TRUE(snap);
    EXPECT_EQ(*snap.value, 5);
    publisher.join();
}

TEST(VersionedBuffer, WaitNewerReturnsOnFinalEvenIfSeen)
{
    VersionedBuffer<int> buffer("b");
    buffer.publish(5, true);
    std::stop_source source;
    // after_version == current version, but final is set: no block.
    const auto snap = buffer.waitNewer(1, source.get_token());
    EXPECT_TRUE(snap.final);
}

TEST(VersionedBuffer, WaitNewerHonorsStop)
{
    VersionedBuffer<int> buffer("b");
    std::stop_source source;
    std::thread stopper([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        source.request_stop();
    });
    const auto snap = buffer.waitNewer(0, source.get_token());
    EXPECT_FALSE(snap); // nothing was ever published
    stopper.join();
}

TEST(VersionedBuffer, ObserversSeeEveryVersion)
{
    VersionedBuffer<int> buffer("b");
    std::vector<std::pair<std::uint64_t, int>> seen;
    buffer.addObserver([&](const Snapshot<int> &snap) {
        seen.emplace_back(snap.version, *snap.value);
    });
    buffer.publish(10, false);
    buffer.publish(11, true);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], (std::pair<std::uint64_t, int>{1, 10}));
    EXPECT_EQ(seen[1], (std::pair<std::uint64_t, int>{2, 11}));
}

TEST(VersionedBuffer, ObserverRegisteredMidStreamSeesLaterVersions)
{
    // Regression: addObserver used to append to the observer vector
    // unsynchronized, so registering while a producer published was a
    // race (and was documented as forbidden). The copy-on-write
    // observer list makes registration safe at any time: an observer
    // added mid-stream sees every version published after its
    // registration completes.
    VersionedBuffer<int> buffer("b");
    std::atomic<bool> stop{false};
    std::atomic<int> published{0};
    std::thread producer([&] {
        int value = 0;
        while (!stop.load()) {
            buffer.publish(value++, false);
            ++published;
        }
        buffer.publish(value, true);
        ++published;
    });

    // Register observers while the producer is mid-stream.
    std::atomic<int> notified{0};
    std::vector<std::uint64_t> seen;
    while (published.load() < 8)
        std::this_thread::yield();
    buffer.addObserver([&](const Snapshot<int> &snap) {
        seen.push_back(snap.version);
        ++notified;
    });
    while (notified.load() < 8)
        std::this_thread::yield();
    stop.store(true);
    producer.join();

    // Every notification after registration arrived, in order, with
    // no gaps, and the final version was delivered.
    ASSERT_FALSE(seen.empty());
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], seen[i - 1] + 1) << "gap at index " << i;
    EXPECT_EQ(seen.back(), buffer.version());
    EXPECT_TRUE(buffer.final());
}

TEST(VersionedBuffer, MovePublishAvoidsCopy)
{
    VersionedBuffer<std::vector<int>> buffer("b");
    std::vector<int> big(1000, 7);
    const int *data = big.data();
    buffer.publish(std::move(big), true);
    EXPECT_EQ(buffer.read().value->data(), data);
}

TEST(VersionedBuffer, ConcurrentReadersNeverSeeTornVersions)
{
    // Property 3: every published version is internally consistent. The
    // writer publishes vectors whose elements all equal their version;
    // readers must never observe a mixed vector.
    VersionedBuffer<std::vector<int>> buffer("b");
    std::atomic<bool> done{false};
    std::atomic<int> torn{0};

    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            while (!done.load(std::memory_order_relaxed)) {
                const auto snap = buffer.read();
                if (!snap)
                    continue;
                const std::vector<int> &v = *snap.value;
                for (int x : v) {
                    if (x != v[0]) {
                        torn.fetch_add(1);
                        break;
                    }
                }
            }
        });
    }

    for (int version = 1; version <= 500; ++version)
        buffer.publish(std::vector<int>(64, version), version == 500);
    done = true;
    for (auto &t : readers)
        t.join();
    EXPECT_EQ(torn.load(), 0);
}

} // namespace
} // namespace anytime
