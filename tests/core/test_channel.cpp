/**
 * @file
 * Tests for the synchronous pipeline's update channel: FIFO delivery,
 * capacity back-pressure (the paper's "f must not overwrite X_i before
 * gS(X_i) begins"), close semantics, and stop integration.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/channel.hpp"

namespace anytime {
namespace {

TEST(UpdateChannel, FifoDelivery)
{
    UpdateChannel<int> channel(4);
    std::stop_source source;
    EXPECT_TRUE(channel.push(1, source.get_token()));
    EXPECT_TRUE(channel.push(2, source.get_token()));
    EXPECT_EQ(channel.pop(source.get_token()), std::optional<int>(1));
    EXPECT_EQ(channel.pop(source.get_token()), std::optional<int>(2));
    EXPECT_EQ(channel.pushCount(), 2u);
    EXPECT_EQ(channel.popCount(), 2u);
}

TEST(UpdateChannel, ZeroCapacityRejected)
{
    EXPECT_THROW(UpdateChannel<int>(0), FatalError);
}

TEST(UpdateChannel, CapacityOneBlocksProducerUntilConsumed)
{
    UpdateChannel<int> channel(1);
    std::stop_source source;
    ASSERT_TRUE(channel.push(1, source.get_token()));

    std::atomic<bool> second_pushed{false};
    std::thread producer([&] {
        channel.push(2, source.get_token());
        second_pushed = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(second_pushed.load()) << "push did not back-pressure";

    EXPECT_EQ(channel.pop(source.get_token()), std::optional<int>(1));
    producer.join();
    EXPECT_TRUE(second_pushed.load());
    EXPECT_EQ(channel.pop(source.get_token()), std::optional<int>(2));
}

TEST(UpdateChannel, CloseDrainsThenSignalsEnd)
{
    UpdateChannel<int> channel(4);
    std::stop_source source;
    channel.push(7, source.get_token());
    channel.close();
    EXPECT_TRUE(channel.closed());
    EXPECT_EQ(channel.pop(source.get_token()), std::optional<int>(7));
    EXPECT_EQ(channel.pop(source.get_token()), std::nullopt);
}

TEST(UpdateChannel, PushAfterClosePanics)
{
    UpdateChannel<int> channel(4);
    std::stop_source source;
    channel.close();
    EXPECT_THROW(channel.push(1, source.get_token()), PanicError);
}

TEST(UpdateChannel, PopUnblocksOnClose)
{
    UpdateChannel<int> channel(4);
    std::stop_source source;
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        channel.close();
    });
    EXPECT_EQ(channel.pop(source.get_token()), std::nullopt);
    closer.join();
}

TEST(UpdateChannel, StopUnblocksBothSides)
{
    UpdateChannel<int> full(1);
    std::stop_source source;
    ASSERT_TRUE(full.push(1, source.get_token()));
    std::thread stopper([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        source.request_stop();
    });
    EXPECT_FALSE(full.push(2, source.get_token()));
    stopper.join();

    UpdateChannel<int> empty(1);
    std::stop_source source2;
    source2.request_stop();
    EXPECT_EQ(empty.pop(source2.get_token()), std::nullopt);
}

TEST(UpdateChannel, ProducerConsumerStress)
{
    UpdateChannel<int> channel(3);
    std::stop_source source;
    const int count = 10000;
    std::vector<int> received;
    std::thread consumer([&] {
        while (auto v = channel.pop(source.get_token()))
            received.push_back(*v);
    });
    for (int i = 0; i < count; ++i)
        ASSERT_TRUE(channel.push(i, source.get_token()));
    channel.close();
    consumer.join();

    // Exactly-once, in-order delivery: the sync pipeline's correctness
    // depends on no update being lost or duplicated.
    ASSERT_EQ(received.size(), static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        ASSERT_EQ(received[static_cast<std::size_t>(i)], i);
}

} // namespace
} // namespace anytime
