/**
 * @file
 * Tests for the run controllers: time budgets, accuracy-threshold
 * stopping, and run-to-completion (paper Section III-A's stopping
 * policies).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/controller.hpp"
#include "core/source_stage.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

/** Automaton whose single stage takes roughly @p total_us microseconds. */
struct SlowCounter
{
    Automaton automaton;
    std::shared_ptr<VersionedBuffer<long>> out;

    explicit SlowCounter(std::uint64_t steps, std::uint64_t step_us = 50)
    {
        out = automaton.makeBuffer<long>("out");
        automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
            "counter", out, 0L, steps,
            [step_us](std::uint64_t, long &state, StageContext &) {
                state += 1;
                std::this_thread::sleep_for(
                    std::chrono::microseconds(step_us));
            },
            /*publish_period=*/8, /*batch=*/4));
    }
};

TEST(Controller, TimeBudgetStopsLongRun)
{
    SlowCounter rig(1u << 20); // ~50 s if left alone
    const RunOutcome outcome =
        runWithTimeBudget(rig.automaton, 50ms);
    EXPECT_FALSE(outcome.reachedPrecise);
    EXPECT_LT(outcome.seconds, 5.0);
    // The anytime guarantee: a valid approximate output exists.
    const auto snap = rig.out->read();
    ASSERT_TRUE(snap);
    EXPECT_GT(*snap.value, 0);
}

TEST(Controller, TimeBudgetLetsShortRunFinish)
{
    SlowCounter rig(64, 10);
    const RunOutcome outcome = runWithTimeBudget(rig.automaton, 10s);
    EXPECT_TRUE(outcome.reachedPrecise);
    EXPECT_TRUE(rig.out->final());
    EXPECT_EQ(*rig.out->read().value, 64);
}

TEST(Controller, RunToCompletionReachesPrecise)
{
    SlowCounter rig(128, 5);
    const RunOutcome outcome = runToCompletion(rig.automaton);
    EXPECT_TRUE(outcome.reachedPrecise);
    EXPECT_EQ(*rig.out->read().value, 128);
}

TEST(Controller, AcceptabilityPredicateStopsEarly)
{
    SlowCounter rig(1u << 20);
    auto out = rig.out;
    const RunOutcome outcome = runUntilAcceptable(
        rig.automaton,
        [out] {
            const auto snap = out->read();
            return snap && *snap.value >= 16; // "good enough"
        },
        2ms);
    EXPECT_FALSE(outcome.reachedPrecise);
    EXPECT_GE(*rig.out->read().value, 16);
}

TEST(Controller, AcceptabilityPredicateNeverTrueRunsToEnd)
{
    SlowCounter rig(32, 5);
    const RunOutcome outcome = runUntilAcceptable(
        rig.automaton, [] { return false; }, 1ms);
    EXPECT_TRUE(outcome.reachedPrecise);
    EXPECT_EQ(*rig.out->read().value, 32);
}

TEST(Controller, PredicateAlreadyTrueStopsBeforeFirstPoll)
{
    SlowCounter rig(1u << 20); // ~50 s if left alone
    // The condition holds before the automaton produces anything: the
    // run must stop immediately, not sleep out a poll interval first.
    const RunOutcome outcome = runUntilAcceptable(
        rig.automaton, [] { return true; }, 10s);
    EXPECT_FALSE(outcome.reachedPrecise);
    EXPECT_LT(outcome.seconds, 5.0);
}

TEST(Controller, ThrowingPredicateShutsDownAndPropagates)
{
    SlowCounter rig(1u << 20);
    EXPECT_THROW(
        runUntilAcceptable(
            rig.automaton,
            []() -> bool {
                throw std::runtime_error("metric exploded");
            },
            1ms),
        std::runtime_error);
    // The automaton was stopped and joined before the throw escaped:
    // no workers remain (a timed wait returns immediately) and the
    // failure did not come from a stage.
    EXPECT_TRUE(rig.automaton.waitUntilDone(std::chrono::nanoseconds{0}));
    EXPECT_FALSE(rig.automaton.failed());
    // The anytime guarantee still holds for whatever was published.
    EXPECT_FALSE(rig.automaton.complete());
}

TEST(Controller, CompletionBetweenPollsReturnsPromptly)
{
    SlowCounter rig(32, 5); // finishes in a few milliseconds
    // A poll interval far longer than the run: completion must wake
    // the controller, not wait out the interval.
    const RunOutcome outcome = runUntilAcceptable(
        rig.automaton, [] { return false; }, 60s);
    EXPECT_TRUE(outcome.reachedPrecise);
    EXPECT_LT(outcome.seconds, 10.0);
    EXPECT_EQ(*rig.out->read().value, 32);
}

} // namespace
} // namespace anytime
