/**
 * @file
 * Failure-injection tests (a throwing stage must stop the automaton
 * gracefully, not the process) and energy-model tests.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>

#include "core/automaton.hpp"
#include "core/energy.hpp"
#include "core/source_stage.hpp"
#include "core/transform_stage.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

TEST(AutomatonFailure, ThrowingStageStopsPipelineGracefully)
{
    Automaton automaton;
    auto out = automaton.makeBuffer<long>("out");
    automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
        "faulty", out, 0L, 1000,
        [](std::uint64_t step, long &state, StageContext &) {
            state += 1;
            if (step == 300)
                throw std::runtime_error("injected fault");
        },
        /*publish_period=*/100, /*batch=*/10));

    automaton.start();
    ASSERT_TRUE(automaton.waitUntilDone(5s));
    automaton.shutdown();

    EXPECT_TRUE(automaton.failed());
    const auto failures = automaton.failures();
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_NE(failures[0].find("faulty"), std::string::npos);
    EXPECT_NE(failures[0].find("injected fault"), std::string::npos);

    // The anytime guarantee degrades gracefully: the last version
    // published before the fault is still readable and non-final.
    const auto snap = out->read();
    ASSERT_TRUE(snap);
    EXPECT_FALSE(snap.final);
    EXPECT_GT(*snap.value, 0);
}

TEST(AutomatonFailure, DownstreamStagesAreStoppedToo)
{
    Automaton automaton;
    auto f_out = automaton.makeBuffer<long>("f");
    auto g_out = automaton.makeBuffer<long>("g");
    automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
        "faulty", f_out, 0L, 10000,
        [](std::uint64_t step, long &state, StageContext &) {
            state += 1;
            if (step == 50)
                throw std::runtime_error("boom");
        },
        /*publish_period=*/10, /*batch=*/5));
    automaton.addStage(makeFunctionStage<long, long>(
        "child", f_out, g_out, [](const long &v) { return v; }));

    automaton.start();
    ASSERT_TRUE(automaton.waitUntilDone(5s))
        << "child did not unblock after upstream failure";
    automaton.shutdown();
    EXPECT_TRUE(automaton.failed());
    EXPECT_FALSE(automaton.complete());
}

TEST(AutomatonFailure, CleanRunReportsNoFailure)
{
    Automaton automaton;
    auto out = automaton.makeBuffer<long>("out");
    automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
        "ok", out, 0L, 10,
        [](std::uint64_t, long &state, StageContext &) { state += 1; },
        5));
    automaton.start();
    automaton.waitUntilDone();
    automaton.shutdown();
    EXPECT_FALSE(automaton.failed());
    EXPECT_TRUE(automaton.failures().empty());
}

TEST(EnergyModel, DynamicEnergyTracksWorkDone)
{
    Automaton automaton;
    auto out = automaton.makeBuffer<long>("out");
    automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
        "worker", out, 0L, 500,
        [](std::uint64_t, long &state, StageContext &) { state += 1; },
        100));
    automaton.start();
    automaton.waitUntilDone();
    automaton.shutdown();

    EnergyModel model(StageEnergyCost{2.0, 0.0});
    const EnergyReport report = model.estimate(automaton, 0.1);
    // DiffusiveSourceStage records one work unit per step.
    EXPECT_DOUBLE_EQ(report.dynamicNanojoules.at("worker"), 1000.0);
    EXPECT_DOUBLE_EQ(report.totalDynamicNanojoules, 1000.0);
    EXPECT_DOUBLE_EQ(report.totalStaticNanojoules, 0.0);
}

TEST(EnergyModel, EarlyStopSpendsProportionallyLess)
{
    // "Hold-the-power-button": stopping at ~30% of the sweep should
    // spend ~30% of the dynamic energy.
    const auto run_for_steps = [](std::uint64_t stop_after) {
        Automaton automaton;
        auto out = automaton.makeBuffer<long>("out");
        auto stage = std::make_shared<DiffusiveSourceStage<long>>(
            "sweep", out, 0L, 1000,
            [&automaton, stop_after](std::uint64_t step, long &state,
                                     StageContext &) {
                state += 1;
                if (step == stop_after)
                    automaton.stop();
            },
            /*publish_period=*/50, /*batch=*/10);
        automaton.addStage(stage);
        automaton.start();
        automaton.waitUntilDone();
        automaton.shutdown();
        EnergyModel model(StageEnergyCost{1.0, 0.0});
        return model.estimate(automaton, 0.0).totalDynamicNanojoules;
    };

    const double partial = run_for_steps(299);
    const double full = run_for_steps(999'999); // never fires: full run
    EXPECT_DOUBLE_EQ(full, 1000.0);
    EXPECT_GE(partial, 300.0);
    EXPECT_LE(partial, 320.0); // stop lands within one batch
}

TEST(EnergyModel, StaticEnergyScalesWithWorkersAndTime)
{
    Automaton automaton;
    auto out = automaton.makeBuffer<long>("out");
    automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
        "sweep", out, 0L, 10,
        [](std::uint64_t, long &state, StageContext &) { state += 1; },
        5),
        /*workers=*/2);
    automaton.start();
    automaton.waitUntilDone();
    automaton.shutdown();

    EnergyModel model(StageEnergyCost{0.0, 100.0}); // 100 mW per worker
    const EnergyReport report = model.estimate(automaton, 2.0);
    // 100 mW * 2 workers * 2 s = 400 mJ = 4e8 nJ.
    EXPECT_DOUBLE_EQ(report.totalStaticNanojoules, 4e8);
}

TEST(EnergyModel, PerStageOverridesApply)
{
    Automaton automaton;
    auto a = automaton.makeBuffer<long>("a");
    auto b = automaton.makeBuffer<long>("b");
    automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
        "cheap", a, 0L, 100,
        [](std::uint64_t, long &state, StageContext &) { state += 1; },
        50));
    automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
        "pricey", b, 0L, 100,
        [](std::uint64_t, long &state, StageContext &) { state += 1; },
        50));
    automaton.start();
    automaton.waitUntilDone();
    automaton.shutdown();

    EnergyModel model(StageEnergyCost{1.0, 0.0});
    model.setStageCost("pricey", StageEnergyCost{10.0, 0.0});
    const EnergyReport report = model.estimate(automaton, 0.0);
    EXPECT_DOUBLE_EQ(report.dynamicNanojoules.at("cheap"), 100.0);
    EXPECT_DOUBLE_EQ(report.dynamicNanojoules.at("pricey"), 1000.0);
    EXPECT_DOUBLE_EQ(report.totalDynamicNanojoules, 1100.0);
}

} // namespace
} // namespace anytime
