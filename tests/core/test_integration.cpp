/**
 * @file
 * Integration property tests: randomized multi-stage pipelines whose
 * final outputs must equal the composed precise functions, regardless
 * of stage shapes, publish periods, or interleavings.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/automaton.hpp"
#include "core/controller.hpp"
#include "core/source_stage.hpp"
#include "core/transform_stage.hpp"
#include "sampling/lfsr_permutation.hpp"
#include "support/rng.hpp"

namespace anytime {
namespace {

/**
 * Randomized pipeline: a diffusive source sums a permuted data set,
 * then a chain of arithmetic transforms, then a two-input join with a
 * second (iterative) source. Parameterized by seed.
 */
class RandomPipeline : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomPipeline, FinalOutputEqualsComposedPreciseFunction)
{
    const std::uint64_t seed = GetParam();
    Xoshiro256 rng(seed);

    const std::uint64_t n = 500 + rng.nextBelow(2000);
    auto data = std::make_shared<std::vector<long>>();
    long precise_sum = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const long v = static_cast<long>(rng.nextBelow(1000)) - 500;
        data->push_back(v);
        precise_sum += v;
    }

    const unsigned chain_length = 1 + rng.nextBelow(4);
    std::vector<long> multipliers;
    for (unsigned i = 0; i < chain_length; ++i)
        multipliers.push_back(1 + static_cast<long>(rng.nextBelow(5)));

    const std::size_t iterative_levels = 1 + rng.nextBelow(4);
    const long iterative_value = static_cast<long>(rng.nextBelow(100));

    Automaton automaton;
    auto sum_buf = automaton.makeBuffer<long>("sum");

    // Diffusive source: LFSR-permuted summation.
    auto perm = std::make_shared<const LfsrPermutation>(
        n, static_cast<std::uint32_t>(seed + 1));
    automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
        "sum", sum_buf, 0L, n,
        [data, perm](std::uint64_t step, long &acc, StageContext &) {
            acc += (*data)[perm->map(step)];
        },
        /*publish_period=*/1 + rng.nextBelow(n)));

    // Chain of multiplier transforms.
    auto upstream = sum_buf;
    for (unsigned i = 0; i < chain_length; ++i) {
        auto next = automaton.makeBuffer<long>("chain" +
                                               std::to_string(i));
        const long m = multipliers[i];
        automaton.addStage(makeFunctionStage<long, long>(
            "mul" + std::to_string(i), upstream, next,
            [m](const long &v) { return v * m; }));
        upstream = next;
    }

    // Second source (iterative) and a joining stage.
    auto iter_buf = automaton.makeBuffer<long>("iter");
    automaton.addStage(std::make_shared<IterativeSourceStage<long>>(
        "iter", iter_buf, iterative_levels,
        [iterative_value, iterative_levels](std::size_t level, long &out,
                                            StageContext &) {
            // Coarse levels are rounded versions of the final value.
            const long shift = static_cast<long>(
                iterative_levels - 1 - level);
            out = (iterative_value >> shift) << shift;
        }));

    auto join_buf = automaton.makeBuffer<long>("join");
    automaton.addStage(makeFunctionStage<long, long, long>(
        "join", upstream, iter_buf, join_buf,
        [](const long &a, const long &b) { return a + b; }));

    const RunOutcome outcome = runToCompletion(automaton);
    ASSERT_TRUE(outcome.reachedPrecise);
    ASSERT_FALSE(automaton.failed());

    long expected = precise_sum;
    for (long m : multipliers)
        expected *= m;
    expected += iterative_value;

    const auto snap = join_buf->read();
    ASSERT_TRUE(snap);
    EXPECT_TRUE(snap.final);
    EXPECT_EQ(*snap.value, expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipeline,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Integration, InterruptAtRandomPointsAlwaysLeavesValidState)
{
    // Fire stop() at a random point of a long pipeline many times: no
    // crash, no torn state, buffers readable, nothing final unless the
    // run actually finished.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Xoshiro256 rng(seed);
        Automaton automaton;
        auto src = automaton.makeBuffer<long>("src");
        auto dst = automaton.makeBuffer<long>("dst");
        automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
            "count", src, 0L, 200'000,
            [](std::uint64_t, long &acc, StageContext &) { acc += 1; },
            1000, 100));
        automaton.addStage(makeFunctionStage<long, long>(
            "copy", src, dst, [](const long &v) { return v; }));

        automaton.start();
        const std::uint64_t spin = rng.nextBelow(50'000);
        for (volatile std::uint64_t i = 0; i < spin; ++i) {
        }
        automaton.stop();
        automaton.shutdown();

        const auto snap = src->read();
        if (snap) {
            EXPECT_GE(*snap.value, 0);
            EXPECT_LE(*snap.value, 200'000);
            if (snap.final) {
                EXPECT_EQ(*snap.value, 200'000);
            }
        }
        EXPECT_FALSE(automaton.failed());
    }
}

} // namespace
} // namespace anytime
