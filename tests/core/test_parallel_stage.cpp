/**
 * @file
 * Tests for the intra-stage parallelism layer (Section IV-C1): the
 * SweepBarrier protocol, the partitioned diffusive source stage, and
 * the partitioned transform body — determinism (bit-identical versions
 * for every worker count), empty partitions, and stop behavior.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "core/automaton.hpp"
#include "core/parallel_stage.hpp"
#include "core/transform_stage.hpp"
#include "sampling/replay.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- barrier

TEST(SweepBarrier, SingleWorkerIsAlwaysLeader)
{
    SweepBarrier barrier(1);
    std::stop_source source;
    for (int round = 0; round < 3; ++round) {
        ASSERT_EQ(barrier.arrive(0, source.get_token()),
                  SweepBarrier::Outcome::leader);
        barrier.release();
    }
}

TEST(SweepBarrier, ExactlyOneLeaderPerWindow)
{
    constexpr unsigned kWorkers = 4;
    constexpr int kWindows = 25;
    SweepBarrier barrier(kWorkers);
    std::stop_source source;
    std::vector<std::atomic<int>> leaders(kWindows);
    std::vector<std::thread> threads;
    for (unsigned w = 0; w < kWorkers; ++w) {
        threads.emplace_back([&, w] {
            for (int window = 0; window < kWindows; ++window) {
                const auto outcome =
                    barrier.arrive(w, source.get_token());
                ASSERT_NE(outcome, SweepBarrier::Outcome::stopped);
                if (outcome == SweepBarrier::Outcome::leader) {
                    ++leaders[window];
                    barrier.release();
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (int window = 0; window < kWindows; ++window)
        EXPECT_EQ(leaders[window].load(), 1) << "window " << window;
}

TEST(SweepBarrier, StopWakesWaitersAndRetractsArrival)
{
    SweepBarrier barrier(2);
    std::stop_source source;
    std::thread waiter([&] {
        EXPECT_EQ(barrier.arrive(0, source.get_token()),
                  SweepBarrier::Outcome::stopped);
        barrier.leave(0);
    });
    std::this_thread::sleep_for(20ms);
    source.request_stop();
    waiter.join();
    // The retracted arrival means this thread still elects as leader.
    std::stop_source fresh;
    EXPECT_EQ(barrier.arrive(1, fresh.get_token()),
              SweepBarrier::Outcome::leader);
    barrier.release();
}

TEST(SweepBarrier, LeavePromotesFullyArrivedRemainder)
{
    // Workers A and B are blocked in arrive(); the never-arriving C
    // leaves. With no future arrival possible, leave() must open the
    // barrier so A and B do not wait for a leader that never comes.
    SweepBarrier barrier(3);
    std::stop_source source;
    std::atomic<int> released{0};
    std::vector<std::thread> blocked;
    for (unsigned i = 0; i < 2; ++i) {
        blocked.emplace_back([&, i] {
            const auto outcome = barrier.arrive(i, source.get_token());
            EXPECT_NE(outcome, SweepBarrier::Outcome::stopped);
            if (outcome == SweepBarrier::Outcome::leader)
                barrier.release();
            ++released;
        });
    }
    std::this_thread::sleep_for(20ms);
    EXPECT_EQ(released.load(), 0);
    barrier.leave(2);
    for (auto &thread : blocked)
        thread.join();
    EXPECT_EQ(released.load(), 2);
}

TEST(SweepBarrier, LeaveDuringLeaderMergeKeepsBarrierClosed)
{
    // Regression: while an elected leader is merging outside the lock,
    // a stopped worker's leave() used to see arrivedCount ==
    // participants and reopen the barrier, releasing the remaining
    // waiter into a race with the in-flight merge. The barrier must
    // stay closed until the leader's own release().
    SweepBarrier barrier(3);
    std::stop_source keepRunning;
    std::stop_source stopOne;

    std::atomic<int> survivorReleased{0};
    std::thread survivor([&] {
        EXPECT_EQ(barrier.arrive(0, keepRunning.get_token()),
                  SweepBarrier::Outcome::released);
        ++survivorReleased;
    });
    std::thread quitter([&] {
        EXPECT_EQ(barrier.arrive(1, stopOne.get_token()),
                  SweepBarrier::Outcome::stopped);
        barrier.leave(1);
    });

    // Let both workers block, then arrive last: this thread is the
    // leader, now notionally merging outside the barrier lock.
    std::this_thread::sleep_for(20ms);
    ASSERT_EQ(barrier.arrive(2, keepRunning.get_token()),
              SweepBarrier::Outcome::leader);

    // Mid-merge, one waiter stops and leaves the gang.
    stopOne.request_stop();
    quitter.join();

    // The survivor must still be parked: nobody may pass the barrier
    // while the leader's merge is in flight.
    std::this_thread::sleep_for(20ms);
    EXPECT_EQ(survivorReleased.load(), 0);

    barrier.release();
    survivor.join();
    EXPECT_EQ(survivorReleased.load(), 1);
}

// ------------------------------------------------- partitioned diffusive

/** Sum-reduction stage: version v must equal the sum of f(step) over
 *  all steps merged so far — independent of worker count. */
std::shared_ptr<PartitionedDiffusiveStage<std::uint64_t, std::uint64_t>>
makeSumStage(std::shared_ptr<VersionedBuffer<std::uint64_t>> out,
             std::uint64_t steps, std::uint64_t window,
             PartitionKind kind)
{
    SweepLayout layout;
    layout.steps = steps;
    layout.window = window;
    layout.kind = kind;
    layout.checkpointStride = 4;
    return std::make_shared<
        PartitionedDiffusiveStage<std::uint64_t, std::uint64_t>>(
        "sum", std::move(out), std::uint64_t{0}, layout,
        [] { return std::uint64_t{0}; },
        [](std::uint64_t &partial) { partial = 0; },
        [](std::uint64_t step, std::uint64_t &partial, StageContext &) {
            partial += step * step + 1;
        },
        [](std::uint64_t &state, std::vector<std::uint64_t> &partials,
           std::uint64_t, std::uint64_t) {
            for (const std::uint64_t partial : partials)
                state += partial;
        });
}

std::uint64_t
expectedSum(std::uint64_t steps)
{
    std::uint64_t sum = 0;
    for (std::uint64_t step = 0; step < steps; ++step)
        sum += step * step + 1;
    return sum;
}

struct RecordedVersion
{
    std::uint64_t version;
    std::uint64_t value;
    bool final;
};

std::vector<RecordedVersion>
runSumAutomaton(unsigned workers, std::uint64_t steps,
                std::uint64_t window, PartitionKind kind)
{
    Automaton automaton;
    auto out = automaton.makeBuffer<std::uint64_t>("sum.out");
    std::mutex mutex;
    std::vector<RecordedVersion> versions;
    out->addObserver([&](const Snapshot<std::uint64_t> &snapshot) {
        std::lock_guard lock(mutex);
        versions.push_back(
            {snapshot.version, *snapshot.value, snapshot.final});
    });
    automaton.addStage(makeSumStage(out, steps, window, kind), workers);
    automaton.start();
    automaton.waitUntilDone();
    automaton.shutdown();
    return versions;
}

TEST(PartitionedDiffusiveStage, EveryVersionBitIdenticalAcrossWorkers)
{
    constexpr std::uint64_t kSteps = 40;
    constexpr std::uint64_t kWindow = 5;
    for (const PartitionKind kind :
         {PartitionKind::cyclic, PartitionKind::block}) {
        const auto reference =
            runSumAutomaton(1, kSteps, kWindow, kind);
        ASSERT_EQ(reference.size(), kSteps / kWindow);
        EXPECT_TRUE(reference.back().final);
        EXPECT_EQ(reference.back().value, expectedSum(kSteps));
        for (const unsigned workers : {2u, 4u, 7u}) {
            const auto versions =
                runSumAutomaton(workers, kSteps, kWindow, kind);
            ASSERT_EQ(versions.size(), reference.size())
                << partitionKindName(kind) << " workers " << workers;
            for (std::size_t i = 0; i < versions.size(); ++i) {
                EXPECT_EQ(versions[i].version, reference[i].version);
                EXPECT_EQ(versions[i].value, reference[i].value)
                    << partitionKindName(kind) << " workers " << workers
                    << " version " << i;
                EXPECT_EQ(versions[i].final, reference[i].final);
            }
        }
    }
}

TEST(PartitionedDiffusiveStage, MoreWorkersThanWindowSteps)
{
    // Window of 1 step with 7 workers: six slices per window are empty
    // (the threadId >= n edge); the barrier must still publish every
    // version and the final result must be exact.
    const auto versions =
        runSumAutomaton(7, /*steps=*/5, /*window=*/1,
                        PartitionKind::cyclic);
    ASSERT_EQ(versions.size(), 5u);
    EXPECT_TRUE(versions.back().final);
    EXPECT_EQ(versions.back().value, expectedSum(5));
}

TEST(PartitionedDiffusiveStage, ReplayKeepsOrderSensitiveWritesExact)
{
    // Writes that collide (state[s % 7], later ordinal wins) are order
    // sensitive across partitions — exactly the tree block-fill
    // hazard. The ordinal-replayed merge must reproduce the sequential
    // result for any worker count.
    constexpr std::uint64_t kSteps = 33;
    using State = std::vector<std::uint64_t>;
    using Partial = OrdinalLog<std::uint64_t>;
    const auto run = [&](unsigned workers) {
        SweepLayout layout;
        layout.steps = kSteps;
        layout.window = 11;
        layout.kind = PartitionKind::cyclic;
        Automaton automaton;
        auto out = automaton.makeBuffer<State>("replay.out");
        auto stage =
            std::make_shared<PartitionedDiffusiveStage<State, Partial>>(
                "replay", out, State(7, 0), layout,
                [] { return Partial{}; },
                [](Partial &partial) { partial.clear(); },
                [](std::uint64_t step, Partial &partial, StageContext &) {
                    partial.push_back({step, step * 13 + 1});
                },
                [](State &state, std::vector<Partial> &partials,
                   std::uint64_t, std::uint64_t) {
                    std::vector<const Partial *> logs;
                    for (const Partial &partial : partials)
                        logs.push_back(&partial);
                    replayOrdinalLogs<std::uint64_t>(
                        logs,
                        [&](std::uint64_t s, std::uint64_t value) {
                            state[s % 7] = value;
                        });
                });
        automaton.addStage(std::move(stage), workers);
        automaton.start();
        automaton.waitUntilDone();
        automaton.shutdown();
        return *out->read().value;
    };
    State sequential(7, 0);
    for (std::uint64_t step = 0; step < kSteps; ++step)
        sequential[step % 7] = step * 13 + 1;
    EXPECT_EQ(run(1), sequential);
    EXPECT_EQ(run(4), sequential);
    EXPECT_EQ(run(7), sequential);
}

TEST(PartitionedDiffusiveStage, StopMidSweepLeavesValidNonFinalBuffer)
{
    SweepLayout layout;
    layout.steps = 10000;
    layout.window = 100;
    layout.checkpointStride = 1;
    Automaton automaton;
    auto out = automaton.makeBuffer<std::uint64_t>("slow.out");
    auto stage = std::make_shared<
        PartitionedDiffusiveStage<std::uint64_t, std::uint64_t>>(
        "slow", out, std::uint64_t{0}, layout,
        [] { return std::uint64_t{0}; },
        [](std::uint64_t &partial) { partial = 0; },
        [](std::uint64_t, std::uint64_t &partial, StageContext &) {
            partial += 1;
            std::this_thread::sleep_for(50us);
        },
        [](std::uint64_t &state, std::vector<std::uint64_t> &partials,
           std::uint64_t, std::uint64_t) {
            for (const std::uint64_t partial : partials)
                state += partial;
        });
    automaton.addStage(std::move(stage), 4);
    automaton.start();
    std::this_thread::sleep_for(20ms);
    automaton.stop();
    automaton.waitUntilDone(100ms);
    automaton.shutdown();
    // Whatever was published is a complete window prefix; an
    // interrupted window must never appear.
    const auto snapshot = out->read();
    EXPECT_FALSE(snapshot.final);
    if (snapshot.value)
        EXPECT_EQ(*snapshot.value % layout.window, 0u);
}

// ------------------------------------------------- partitioned transform

TEST(PartitionedTransformStage, FinalOutputMatchesPreciseForAnyWorkers)
{
    // square-each-element transform over the latest input version.
    using Vec = std::vector<std::int64_t>;
    using Partial = OrdinalLog<std::int64_t>;
    const Vec input_final{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7};
    const auto run = [&](unsigned workers) {
        Automaton automaton;
        auto in = automaton.makeBuffer<Vec>("in");
        auto out = automaton.makeBuffer<Vec>("out");
        PartitionedBody<Partial, Vec, Vec> body;
        body.layout.steps = input_final.size();
        body.layout.window = 4;
        body.layout.kind = PartitionKind::cyclic;
        body.layout.checkpointStride = 2;
        body.makePartial = [] { return Partial{}; };
        body.resetPartial = [](Partial &partial) { partial.clear(); };
        body.init = [](const Vec &in_value) {
            return Vec(in_value.size(), 0);
        };
        body.step = [](const Vec &in_value, std::uint64_t step,
                       Partial &partial, StageContext &) {
            partial.push_back(
                {step, in_value[step] * in_value[step]});
        };
        body.merge = [](Vec &state, std::vector<Partial> &partials,
                        std::uint64_t, std::uint64_t) {
            std::vector<const Partial *> logs;
            for (const Partial &partial : partials)
                logs.push_back(&partial);
            replayOrdinalLogs<std::int64_t>(
                logs, [&](std::uint64_t s, std::int64_t value) {
                    state[s] = value;
                });
        };
        auto stage = std::make_shared<TransformStage<Vec, Vec>>(
            "square", in, out, std::move(body));
        automaton.addStage(std::move(stage), workers);

        // A non-final version first, the final one shortly after the
        // automaton is running (exercises the re-sweep/abandon path).
        Vec earlier(input_final.size(), 1);
        in->publish(std::move(earlier), false);
        automaton.start();
        std::this_thread::sleep_for(5ms);
        in->publish(input_final, true);
        automaton.waitUntilDone();
        automaton.shutdown();
        return *out->read().value;
    };

    Vec precise(input_final.size());
    for (std::size_t i = 0; i < input_final.size(); ++i)
        precise[i] = input_final[i] * input_final[i];
    for (const unsigned workers : {1u, 2u, 4u, 7u}) {
        EXPECT_EQ(run(workers), precise) << "workers " << workers;
    }
}

TEST(PartitionedTransformStage, EmitBodyStillRejectsMultipleWorkers)
{
    // The legacy emit-based body cannot be partitioned; placing it on
    // several workers must fail loudly, not race.
    auto in = std::make_shared<VersionedBuffer<int>>("in");
    auto out = std::make_shared<VersionedBuffer<int>>("out");
    TransformStage<int, int> stage(
        "legacy", in, out,
        [](const int &value, Emitter<int> &emitter, StageContext &) {
            emitter.emit(value, true);
        });
    PauseGate gate;
    StageStats stats;
    std::stop_source source;
    StageContext ctx(source.get_token(), gate, stats, 0, 2);
    EXPECT_THROW(stage.run(ctx), FatalError);
}

} // namespace
} // namespace anytime
