/**
 * @file
 * Tests for the pipeline scheduling policies (paper Section IV-C2).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/scheduling.hpp"

namespace anytime {
namespace {

/** The Figure 2 diamond: long source f, medium g/h, final i. */
std::vector<StageLoad>
diamond()
{
    return {
        {"f", 8.0, true, 0},
        {"g", 2.0, true, 1},
        {"h", 2.0, true, 1},
        {"i", 3.0, true, 2},
    };
}

unsigned
total(const std::vector<unsigned> &workers)
{
    return std::accumulate(workers.begin(), workers.end(), 0u);
}

TEST(Scheduling, ValidatesInput)
{
    EXPECT_THROW(
        allocateWorkers({}, 4, SchedulePolicy::balanced), FatalError);
    EXPECT_THROW(allocateWorkers(diamond(), 3, SchedulePolicy::balanced),
                 FatalError);
}

TEST(Scheduling, EveryStageGetsAtLeastOneWorker)
{
    for (const auto policy :
         {SchedulePolicy::balanced, SchedulePolicy::firstOutput,
          SchedulePolicy::outputGap}) {
        const auto workers = allocateWorkers(diamond(), 4, policy);
        ASSERT_EQ(workers.size(), 4u);
        for (unsigned w : workers)
            EXPECT_GE(w, 1u);
        EXPECT_EQ(total(workers), 4u);
    }
}

TEST(Scheduling, BudgetIsFullySpentWhenParallelizable)
{
    const auto workers =
        allocateWorkers(diamond(), 16, SchedulePolicy::balanced);
    EXPECT_EQ(total(workers), 16u);
}

TEST(Scheduling, BalancedEqualizesLatencies)
{
    const auto workers =
        allocateWorkers(diamond(), 8, SchedulePolicy::balanced);
    // f is 8/2/3x longer than g/h/i: balanced allocation gives f the
    // lion's share so per-stage latencies converge.
    EXPECT_GE(workers[0], 3u);
    // Effective latencies after allocation are within ~2x of each
    // other.
    const auto stages = diamond();
    double lo = 1e18, hi = 0.0;
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const double effective = stages[i].latency / workers[i];
        lo = std::min(lo, effective);
        hi = std::max(hi, effective);
    }
    EXPECT_LE(hi / lo, 3.0);
}

TEST(Scheduling, FirstOutputFavorsUpstream)
{
    const auto workers =
        allocateWorkers(diamond(), 8, SchedulePolicy::firstOutput);
    // The longest upstream stage (f, depth 0) dominates.
    EXPECT_GT(workers[0], workers[3]);
    EXPECT_GE(workers[0], 4u);
}

TEST(Scheduling, OutputGapFavorsFinalStage)
{
    const auto workers_gap =
        allocateWorkers(diamond(), 8, SchedulePolicy::outputGap);
    const auto workers_first =
        allocateWorkers(diamond(), 8, SchedulePolicy::firstOutput);
    // The final stage (i) gets more under outputGap than firstOutput.
    EXPECT_GT(workers_gap[3], workers_first[3]);
}

TEST(Scheduling, NonParallelizableStagesStayAtOne)
{
    std::vector<StageLoad> stages = diamond();
    stages[0].parallelizable = false; // f can't scale
    const auto workers =
        allocateWorkers(stages, 12, SchedulePolicy::balanced);
    EXPECT_EQ(workers[0], 1u);
    EXPECT_EQ(total(workers), 12u); // spare redirected elsewhere
}

TEST(Scheduling, AllSerialStagesLeaveBudgetUnspent)
{
    std::vector<StageLoad> stages = diamond();
    for (auto &stage : stages)
        stage.parallelizable = false;
    const auto workers =
        allocateWorkers(stages, 10, SchedulePolicy::balanced);
    EXPECT_EQ(total(workers), 4u); // 1 each; spare unusable
}

} // namespace
} // namespace anytime
