/**
 * @file
 * Tests for the iterative and diffusive source stage templates: version
 * sequences, final semantics, interruption validity, and multi-worker
 * equivalence for commutative step functions.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "core/source_stage.hpp"

namespace anytime {
namespace {

struct ManualContext
{
    PauseGate gate;
    StageStats stats;
    std::stop_source source;

    StageContext
    make(unsigned id = 0, unsigned count = 1)
    {
        return StageContext(source.get_token(), gate, stats, id, count);
    }
};

TEST(IterativeSourceStage, PublishesOneVersionPerLevel)
{
    auto buffer = std::make_shared<VersionedBuffer<int>>("out");
    std::vector<std::size_t> levels_run;
    IterativeSourceStage<int> stage(
        "iter", buffer, 3,
        [&](std::size_t level, int &out, StageContext &) {
            levels_run.push_back(level);
            out = static_cast<int>(100 + level);
        });

    ManualContext mc;
    StageContext ctx = mc.make();
    stage.run(ctx);

    EXPECT_EQ(levels_run, (std::vector<std::size_t>{0, 1, 2}));
    EXPECT_EQ(buffer->version(), 3u);
    EXPECT_TRUE(buffer->final());
    EXPECT_EQ(*buffer->read().value, 102);
}

TEST(IterativeSourceStage, EachLevelStartsFromPrototype)
{
    // Iterative levels must overwrite, not accumulate (Section III-B1).
    auto buffer = std::make_shared<VersionedBuffer<int>>("out");
    IterativeSourceStage<int> stage(
        "iter", buffer, 2,
        [](std::size_t, int &out, StageContext &) { out += 1; },
        /*prototype=*/10);
    ManualContext mc;
    StageContext ctx = mc.make();
    stage.run(ctx);
    EXPECT_EQ(*buffer->read().value, 11); // 10 + 1, not 10 + 2
}

TEST(IterativeSourceStage, StopSkipsIncompleteLevel)
{
    auto buffer = std::make_shared<VersionedBuffer<int>>("out");
    ManualContext mc;
    IterativeSourceStage<int> stage(
        "iter", buffer, 3,
        [&](std::size_t level, int &out, StageContext &) {
            out = static_cast<int>(level);
            if (level == 1)
                mc.source.request_stop(); // stop arrives mid-level
        });
    StageContext ctx = mc.make();
    stage.run(ctx);

    // Level 0 published; level 1 was interrupted and must NOT be.
    EXPECT_EQ(buffer->version(), 1u);
    EXPECT_FALSE(buffer->final());
    EXPECT_EQ(*buffer->read().value, 0);
}

TEST(IterativeSourceStage, RejectsMultipleWorkers)
{
    auto buffer = std::make_shared<VersionedBuffer<int>>("out");
    IterativeSourceStage<int> stage(
        "iter", buffer, 1, [](std::size_t, int &, StageContext &) {});
    ManualContext mc;
    StageContext ctx = mc.make(0, 2);
    EXPECT_THROW(stage.run(ctx), FatalError);
}

TEST(DiffusiveSourceStage, FinalEqualsSequentialApplication)
{
    auto buffer =
        std::make_shared<VersionedBuffer<std::vector<int>>>("out");
    const std::uint64_t steps = 1000;
    DiffusiveSourceStage<std::vector<int>> stage(
        "diff", buffer, std::vector<int>(steps, 0), steps,
        [](std::uint64_t step, std::vector<int> &state, StageContext &) {
            state[step] = static_cast<int>(step * 3);
        },
        /*publish_period=*/100);

    ManualContext mc;
    StageContext ctx = mc.make();
    stage.run(ctx);

    EXPECT_TRUE(buffer->final());
    const auto snap = buffer->read();
    for (std::uint64_t i = 0; i < steps; ++i)
        ASSERT_EQ((*snap.value)[i], static_cast<int>(i * 3));
    // First batch publish + periodic + final.
    EXPECT_GE(buffer->version(), steps / 100);
}

TEST(DiffusiveSourceStage, IntermediateVersionsBuildOnPreviousOutput)
{
    auto buffer = std::make_shared<VersionedBuffer<long>>("out");
    std::vector<long> observed;
    buffer->addObserver([&](const Snapshot<long> &snap) {
        observed.push_back(*snap.value);
    });
    DiffusiveSourceStage<long> stage(
        "diff", buffer, 0L, 10,
        [](std::uint64_t, long &state, StageContext &) { state += 1; },
        /*publish_period=*/2, /*batch=*/2);
    ManualContext mc;
    StageContext ctx = mc.make();
    stage.run(ctx);

    // Counts are monotone non-decreasing across versions: accuracy is
    // diffused, never reset.
    ASSERT_FALSE(observed.empty());
    for (std::size_t i = 1; i < observed.size(); ++i)
        EXPECT_GE(observed[i], observed[i - 1]);
    EXPECT_EQ(observed.back(), 10);
}

TEST(DiffusiveSourceStage, MultiWorkerMatchesSingleWorker)
{
    // The step function is commutative (histogram-style increments), so
    // any worker interleaving must give the same final output.
    const std::uint64_t steps = 5000;
    const auto make_stage =
        [&](std::shared_ptr<VersionedBuffer<std::vector<int>>> buffer) {
            return std::make_shared<
                DiffusiveSourceStage<std::vector<int>>>(
                "diff", buffer, std::vector<int>(64, 0), steps,
                [](std::uint64_t step, std::vector<int> &state,
                   StageContext &) { state[step % 64] += 1; },
                /*publish_period=*/1000, /*batch=*/64);
        };

    auto single =
        std::make_shared<VersionedBuffer<std::vector<int>>>("s");
    {
        ManualContext mc;
        StageContext ctx = mc.make();
        make_stage(single)->run(ctx);
    }

    auto multi = std::make_shared<VersionedBuffer<std::vector<int>>>("m");
    {
        ManualContext mc;
        auto stage = make_stage(multi);
        std::vector<std::thread> workers;
        for (unsigned w = 0; w < 4; ++w) {
            workers.emplace_back([&, w] {
                StageContext ctx = mc.make(w, 4);
                stage->run(ctx);
            });
        }
        for (auto &t : workers)
            t.join();
    }

    EXPECT_TRUE(multi->final());
    EXPECT_EQ(*multi->read().value, *single->read().value);
}

TEST(DiffusiveSourceStage, StopLeavesValidPartialVersion)
{
    auto buffer = std::make_shared<VersionedBuffer<long>>("out");
    ManualContext mc;
    DiffusiveSourceStage<long> stage(
        "diff", buffer, 0L, 1000,
        [&](std::uint64_t step, long &state, StageContext &) {
            state += 1;
            if (step == 499)
                mc.source.request_stop();
        },
        /*publish_period=*/100, /*batch=*/50);
    StageContext ctx = mc.make();
    stage.run(ctx);

    EXPECT_FALSE(buffer->final());
    const auto snap = buffer->read();
    ASSERT_TRUE(snap);
    EXPECT_GT(*snap.value, 0);
    EXPECT_LE(*snap.value, 1000);
}

TEST(DiffusiveSourceStage, ValidatesArguments)
{
    auto buffer = std::make_shared<VersionedBuffer<int>>("out");
    const auto fn = [](std::uint64_t, int &, StageContext &) {};
    EXPECT_THROW(DiffusiveSourceStage<int>("d", buffer, 0, 0, fn, 1),
                 FatalError);
    EXPECT_THROW(DiffusiveSourceStage<int>("d", buffer, 0, 1, fn, 0),
                 FatalError);
    EXPECT_THROW(DiffusiveSourceStage<int>("d", buffer, 0, 1, fn, 1, 0),
                 FatalError);
}

} // namespace
} // namespace anytime
