/**
 * @file
 * Tests for the stage execution context: pause gate and cooperative
 * checkpointing (the anytime model's stop/pause controls).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/stage.hpp"

namespace anytime {
namespace {

TEST(PauseGate, StartsOpen)
{
    PauseGate gate;
    EXPECT_FALSE(gate.isPaused());
    std::stop_source source;
    EXPECT_TRUE(gate.wait(source.get_token()));
}

TEST(PauseGate, PauseBlocksUntilResume)
{
    PauseGate gate;
    gate.pause();
    std::stop_source source;
    std::atomic<bool> released{false};
    std::thread waiter([&] {
        gate.wait(source.get_token());
        released = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(released.load());
    gate.resume();
    waiter.join();
    EXPECT_TRUE(released.load());
}

TEST(PauseGate, StopReleasesPausedWaiter)
{
    PauseGate gate;
    gate.pause();
    std::stop_source source;
    std::atomic<bool> result{true};
    std::thread waiter([&] { result = gate.wait(source.get_token()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    source.request_stop();
    waiter.join();
    EXPECT_FALSE(result.load()) << "wait must report stop";
}

TEST(StageContext, CheckpointCountsAndHonorsStop)
{
    PauseGate gate;
    StageStats stats;
    std::stop_source source;
    StageContext ctx(source.get_token(), gate, stats, 0, 1);

    EXPECT_TRUE(ctx.checkpoint());
    EXPECT_TRUE(ctx.checkpoint());
    EXPECT_EQ(stats.checkpoints.load(), 2u);

    source.request_stop();
    EXPECT_TRUE(ctx.stopRequested());
    EXPECT_FALSE(ctx.checkpoint());
}

TEST(StageContext, AddWorkAccumulates)
{
    PauseGate gate;
    StageStats stats;
    std::stop_source source;
    StageContext ctx(source.get_token(), gate, stats, 2, 4);
    ctx.addWork();
    ctx.addWork(10);
    EXPECT_EQ(stats.steps.load(), 11u);
    EXPECT_EQ(ctx.workerId(), 2u);
    EXPECT_EQ(ctx.workerCount(), 4u);
}

TEST(StageContext, CheckpointBlocksWhilePaused)
{
    PauseGate gate;
    StageStats stats;
    std::stop_source source;
    StageContext ctx(source.get_token(), gate, stats, 0, 1);

    gate.pause();
    std::atomic<bool> passed{false};
    std::thread worker([&] {
        ctx.checkpoint();
        passed = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(passed.load());
    gate.resume();
    worker.join();
    EXPECT_TRUE(passed.load());
}

} // namespace
} // namespace anytime
