/**
 * @file
 * Tests for Emitter staleness: a long anytime transform body can detect
 * that newer input versions superseded the one it is processing and
 * abandon the sweep, without ever losing the precise-output guarantee
 * (final inputs are never stale).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/transform_stage.hpp"

namespace anytime {
namespace {

struct ManualContext
{
    PauseGate gate;
    StageStats stats;
    std::stop_source source;

    StageContext
    make()
    {
        return StageContext(source.get_token(), gate, stats, 0, 1);
    }
};

TEST(EmitterStaleness, DefaultEmitterIsNeverStale)
{
    VersionedBuffer<int> out("out");
    Emitter<int> emitter(out, false);
    EXPECT_FALSE(emitter.stale());
}

TEST(EmitterStaleness, BecomesStaleWhenInputAdvances)
{
    auto in = std::make_shared<VersionedBuffer<int>>("in");
    auto out = std::make_shared<VersionedBuffer<int>>("out");

    bool was_stale_initially = true;
    bool stale_after_publish = false;
    TransformStage<int, int> stage(
        "probe", in, out,
        [&](const int &v, Emitter<int> &emitter, StageContext &) {
            if (v == 1) {
                was_stale_initially = emitter.stale();
                in->publish(2, true); // a newer version lands mid-body
                stale_after_publish = emitter.stale();
                return; // abandon: emit nothing for the stale input
            }
            emitter.emit(v, true);
        });

    in->publish(1, false);
    ManualContext mc;
    StageContext ctx = mc.make();
    stage.run(ctx);

    EXPECT_FALSE(was_stale_initially);
    EXPECT_TRUE(stale_after_publish);
    // The run loop re-invoked the body on the final version.
    EXPECT_TRUE(out->final());
    EXPECT_EQ(*out->read().value, 2);
}

TEST(EmitterStaleness, FinalInputsAreNeverStale)
{
    auto in = std::make_shared<VersionedBuffer<int>>("in");
    auto out = std::make_shared<VersionedBuffer<int>>("out");
    bool stale_seen = false;
    TransformStage<int, int> stage(
        "probe", in, out,
        [&](const int &v, Emitter<int> &emitter, StageContext &) {
            stale_seen = emitter.stale();
            emitter.emit(v, true);
        });
    in->publish(9, true);
    ManualContext mc;
    StageContext ctx = mc.make();
    stage.run(ctx);
    EXPECT_FALSE(stale_seen)
        << "nothing can supersede the final version";
    EXPECT_TRUE(out->final());
}

TEST(EmitterStaleness, AbandoningSweepsStillReachesPrecise)
{
    // A parent publishes many versions; the child abandons every stale
    // sweep; the final sweep must still complete and be precise.
    auto in = std::make_shared<VersionedBuffer<int>>("in");
    auto out = std::make_shared<VersionedBuffer<int>>("out");
    unsigned abandoned = 0;
    TransformStage<int, int> stage(
        "child", in, out,
        [&](const int &v, Emitter<int> &emitter, StageContext &) {
            for (int part = 0; part < 8; ++part) {
                if (!emitter.inputsFinal() && emitter.stale()) {
                    ++abandoned;
                    return;
                }
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            }
            emitter.emit(v * 10, true);
        });

    ManualContext mc;
    std::thread runner([&] {
        StageContext ctx = mc.make();
        stage.run(ctx);
    });
    for (int v = 1; v <= 5; ++v) {
        in->publish(v, v == 5);
        std::this_thread::sleep_for(std::chrono::microseconds(400));
    }
    runner.join();

    EXPECT_TRUE(out->final());
    EXPECT_EQ(*out->read().value, 50);
}

} // namespace
} // namespace anytime
