/**
 * @file
 * Tests for the synchronous pipeline (paper Section III-C2), including
 * the paper's Figure 8 example: a parent generating a string
 * letter-by-letter and a distributive child capitalizing each new
 * letter exactly once.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>

#include "core/sync_stage.hpp"

namespace anytime {
namespace {

struct ManualContext
{
    PauseGate gate;
    StageStats stats;
    std::stop_source source;

    StageContext
    make()
    {
        return StageContext(source.get_token(), gate, stats, 0, 1);
    }
};

TEST(SyncPipeline, Figure8CapitalizeExample)
{
    const std::string word = "hello, anytime automaton";
    auto f_out = std::make_shared<VersionedBuffer<std::string>>("f");
    auto g_out = std::make_shared<VersionedBuffer<std::string>>("g");
    auto channel = std::make_shared<UpdateChannel<char>>(1);

    // Parent f: diffusive string growth, one letter per step.
    SyncSourceStage<std::string, char> parent(
        "f", f_out, channel, std::string(), word.size(),
        [&](std::uint64_t step, StageContext &) { return word[step]; },
        [](std::string &state, const char &c) { state.push_back(c); },
        /*publish_period=*/4);

    // Child gS: distributive capitalization folding one update each.
    std::uint64_t fold_count = 0;
    SyncTransformStage<char, std::string> child(
        "g", channel, g_out, std::string(),
        [&](std::string &acc, const char &c, StageContext &) {
            acc.push_back(static_cast<char>(
                std::toupper(static_cast<unsigned char>(c))));
            ++fold_count;
        },
        /*publish_period=*/4);

    ManualContext mc;
    std::thread child_thread([&] {
        StageContext ctx = mc.make();
        child.run(ctx);
    });
    {
        StageContext ctx = mc.make();
        parent.run(ctx);
    }
    child_thread.join();

    EXPECT_TRUE(f_out->final());
    EXPECT_TRUE(g_out->final());
    EXPECT_EQ(*f_out->read().value, word);
    EXPECT_EQ(*g_out->read().value, "HELLO, ANYTIME AUTOMATON");
    // Distributivity payoff: each letter capitalized exactly once, no
    // asynchronous-pipeline rework.
    EXPECT_EQ(fold_count, word.size());
    EXPECT_EQ(channel->pushCount(), word.size());
    EXPECT_EQ(channel->popCount(), word.size());
}

TEST(SyncPipeline, SumOfUpdatesEqualsPreciseReduction)
{
    const std::uint64_t n = 1000;
    auto f_out = std::make_shared<VersionedBuffer<long>>("f");
    auto g_out = std::make_shared<VersionedBuffer<long>>("g");
    auto channel = std::make_shared<UpdateChannel<long>>(8);

    SyncSourceStage<long, long> parent(
        "sum", f_out, channel, 0L, n,
        [](std::uint64_t step, StageContext &) {
            return static_cast<long>(step);
        },
        [](long &state, const long &x) { state += x; },
        /*publish_period=*/100);

    // Child: g(x) = 2x is distributive over addition.
    SyncTransformStage<long, long> child(
        "double", channel, g_out, 0L,
        [](long &acc, const long &x, StageContext &) { acc += 2 * x; },
        /*publish_period=*/100);

    ManualContext mc;
    std::thread child_thread([&] {
        StageContext ctx = mc.make();
        child.run(ctx);
    });
    {
        StageContext ctx = mc.make();
        parent.run(ctx);
    }
    child_thread.join();

    const long expected = static_cast<long>(n * (n - 1) / 2);
    EXPECT_EQ(*f_out->read().value, expected);
    EXPECT_EQ(*g_out->read().value, 2 * expected);
    EXPECT_TRUE(g_out->final());
}

TEST(SyncPipeline, ChildVersionsAreMonotone)
{
    auto f_out = std::make_shared<VersionedBuffer<long>>("f");
    auto g_out = std::make_shared<VersionedBuffer<long>>("g");
    auto channel = std::make_shared<UpdateChannel<long>>(2);
    std::vector<long> observed;
    g_out->addObserver([&](const Snapshot<long> &snap) {
        observed.push_back(*snap.value);
    });

    SyncSourceStage<long, long> parent(
        "ones", f_out, channel, 0L, 64,
        [](std::uint64_t, StageContext &) { return 1L; },
        [](long &state, const long &x) { state += x; }, 16);
    SyncTransformStage<long, long> child(
        "acc", channel, g_out, 0L,
        [](long &acc, const long &x, StageContext &) { acc += x; }, 16);

    ManualContext mc;
    std::thread child_thread([&] {
        StageContext ctx = mc.make();
        child.run(ctx);
    });
    {
        StageContext ctx = mc.make();
        parent.run(ctx);
    }
    child_thread.join();

    ASSERT_FALSE(observed.empty());
    for (std::size_t i = 1; i < observed.size(); ++i)
        EXPECT_GE(observed[i], observed[i - 1]);
    EXPECT_EQ(observed.back(), 64);
}

TEST(SyncPipeline, StopInterruptsBothSides)
{
    auto f_out = std::make_shared<VersionedBuffer<long>>("f");
    auto g_out = std::make_shared<VersionedBuffer<long>>("g");
    auto channel = std::make_shared<UpdateChannel<long>>(1);

    ManualContext mc;
    SyncSourceStage<long, long> parent(
        "slow", f_out, channel, 0L, 1u << 20,
        [&](std::uint64_t step, StageContext &) {
            if (step == 100)
                mc.source.request_stop();
            return 1L;
        },
        [](long &state, const long &x) { state += x; }, 32);
    SyncTransformStage<long, long> child(
        "acc", channel, g_out, 0L,
        [](long &acc, const long &x, StageContext &) { acc += x; }, 32);

    std::thread child_thread([&] {
        StageContext ctx = mc.make();
        child.run(ctx);
    });
    {
        StageContext ctx = mc.make();
        parent.run(ctx);
    }
    child_thread.join();

    EXPECT_FALSE(f_out->final());
    EXPECT_FALSE(g_out->final());
}

TEST(SyncStage, ValidatesArguments)
{
    auto buf = std::make_shared<VersionedBuffer<long>>("b");
    auto channel = std::make_shared<UpdateChannel<long>>(1);
    const auto make = [](std::uint64_t, StageContext &) { return 0L; };
    const auto apply = [](long &, const long &) {};
    const auto fold = [](long &, const long &, StageContext &) {};
    EXPECT_THROW((SyncSourceStage<long, long>("s", buf, channel, 0L, 0,
                                              make, apply, 1)),
                 FatalError);
    EXPECT_THROW((SyncSourceStage<long, long>("s", buf, channel, 0L, 1,
                                              make, apply, 0)),
                 FatalError);
    EXPECT_THROW(
        (SyncTransformStage<long, long>("t", channel, buf, 0L, fold, 0)),
        FatalError);
}

} // namespace
} // namespace anytime
