/**
 * @file
 * Tests for asynchronous-pipeline transform stages: latest-version
 * consumption, final propagation, anytime child bodies, multi-input
 * joins, and stop behavior.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/transform_stage.hpp"

namespace anytime {
namespace {

struct ManualContext
{
    PauseGate gate;
    StageStats stats;
    std::stop_source source;

    StageContext
    make()
    {
        return StageContext(source.get_token(), gate, stats, 0, 1);
    }
};

TEST(TransformStage, ProcessesFinalInputToCompletion)
{
    auto in = std::make_shared<VersionedBuffer<int>>("in");
    auto out = std::make_shared<VersionedBuffer<int>>("out");
    TransformStage<int, int> stage(
        "double", in, out,
        [](const int &value, Emitter<int> &emitter, StageContext &) {
            emitter.emit(value * 2, true);
        });

    in->publish(21, true);
    ManualContext mc;
    StageContext ctx = mc.make();
    stage.run(ctx); // returns once the final input is processed

    EXPECT_TRUE(out->final());
    EXPECT_EQ(*out->read().value, 42);
}

TEST(TransformStage, NonFinalInputsProduceNonFinalOutputs)
{
    auto in = std::make_shared<VersionedBuffer<int>>("in");
    auto out = std::make_shared<VersionedBuffer<int>>("out");
    TransformStage<int, int> stage(
        "inc", in, out,
        [](const int &value, Emitter<int> &emitter, StageContext &) {
            EXPECT_FALSE(emitter.inputsFinal());
            emitter.emit(value + 1, true); // stage-final, not buffer-final
        });

    in->publish(5, false);
    ManualContext mc;
    std::thread runner([&] {
        StageContext ctx = mc.make();
        stage.run(ctx);
    });
    // Wait for the first output, then stop (input never goes final).
    while (out->version() == 0)
        std::this_thread::yield();
    EXPECT_FALSE(out->final());
    EXPECT_EQ(*out->read().value, 6);
    mc.source.request_stop();
    runner.join();
}

TEST(TransformStage, SkipsStaleVersionsProcessesLatest)
{
    // "g processes whichever output F_i happens to be in the buffer":
    // if versions arrive while g is busy, intermediate ones are skipped.
    auto in = std::make_shared<VersionedBuffer<int>>("in");
    auto out = std::make_shared<VersionedBuffer<int>>("out");
    std::vector<int> processed;
    TransformStage<int, int> stage(
        "track", in, out,
        [&](const int &value, Emitter<int> &emitter, StageContext &) {
            processed.push_back(value);
            emitter.emit(value, true);
        });

    for (int v = 1; v <= 10; ++v)
        in->publish(v, v == 10);
    ManualContext mc;
    StageContext ctx = mc.make();
    stage.run(ctx);

    // Started after all publishes: only the latest (final) is seen.
    EXPECT_EQ(processed, (std::vector<int>{10}));
    EXPECT_TRUE(out->final());
}

TEST(TransformStage, AnytimeChildEmitsSeveralVersionsPerInput)
{
    auto in = std::make_shared<VersionedBuffer<int>>("in");
    auto out = std::make_shared<VersionedBuffer<int>>("out");
    TransformStage<int, int> stage(
        "anytime", in, out,
        [](const int &value, Emitter<int> &emitter, StageContext &) {
            emitter.emit(value / 4, false); // coarse
            emitter.emit(value / 2, false); // finer
            emitter.emit(value, true);      // precise for this input
        });

    in->publish(100, true);
    ManualContext mc;
    StageContext ctx = mc.make();
    stage.run(ctx);

    EXPECT_EQ(out->version(), 3u);
    EXPECT_TRUE(out->final());
    EXPECT_EQ(*out->read().value, 100);
}

TEST(TransformStage, TwoInputJoinWaitsForBoth)
{
    auto a = std::make_shared<VersionedBuffer<int>>("a");
    auto b = std::make_shared<VersionedBuffer<int>>("b");
    auto out = std::make_shared<VersionedBuffer<int>>("out");
    TransformStage<int, int, int> stage(
        "sum", a, b, out,
        [](const int &x, const int &y, Emitter<int> &emitter,
           StageContext &) { emitter.emit(x + y, true); });

    ManualContext mc;
    std::thread runner([&] {
        StageContext ctx = mc.make();
        stage.run(ctx);
    });
    a->publish(1, true);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(out->version(), 0u) << "ran before second input existed";
    b->publish(2, true);
    runner.join();

    EXPECT_TRUE(out->final());
    EXPECT_EQ(*out->read().value, 3);
}

TEST(TransformStage, ReprocessesWhenAnyInputAdvances)
{
    auto a = std::make_shared<VersionedBuffer<int>>("a");
    auto b = std::make_shared<VersionedBuffer<int>>("b");
    auto out = std::make_shared<VersionedBuffer<int>>("out");
    TransformStage<int, int, int> stage(
        "sum", a, b, out,
        [](const int &x, const int &y, Emitter<int> &emitter,
           StageContext &) { emitter.emit(x + y, true); });

    a->publish(10, true);
    b->publish(1, false);
    ManualContext mc;
    std::thread runner([&] {
        StageContext ctx = mc.make();
        stage.run(ctx);
    });
    while (out->version() == 0)
        std::this_thread::yield();
    EXPECT_EQ(*out->read().value, 11);
    b->publish(2, true);
    runner.join();
    EXPECT_EQ(*out->read().value, 12);
    EXPECT_TRUE(out->final());
}

TEST(TransformStage, FunctionStageHelper)
{
    auto in = std::make_shared<VersionedBuffer<std::string>>("in");
    auto out = std::make_shared<VersionedBuffer<std::size_t>>("out");
    auto stage = makeFunctionStage<std::size_t, std::string>(
        "len", in, out,
        [](const std::string &s) { return s.size(); });

    in->publish(std::string("hello"), true);
    ManualContext mc;
    StageContext ctx = mc.make();
    stage->run(ctx);
    EXPECT_EQ(*out->read().value, 5u);
    EXPECT_TRUE(out->final());
}

TEST(TransformStage, ReadsAndWritesReportGraphEdges)
{
    auto in = std::make_shared<VersionedBuffer<int>>("in");
    auto out = std::make_shared<VersionedBuffer<int>>("out");
    TransformStage<int, int> stage(
        "t", in, out,
        [](const int &, Emitter<int> &, StageContext &) {});
    ASSERT_EQ(stage.reads().size(), 1u);
    EXPECT_EQ(stage.reads()[0], in.get());
    EXPECT_EQ(stage.writes(), out.get());
}

TEST(TransformStage, StopWhileWaitingExitsCleanly)
{
    auto in = std::make_shared<VersionedBuffer<int>>("in");
    auto out = std::make_shared<VersionedBuffer<int>>("out");
    TransformStage<int, int> stage(
        "t", in, out,
        [](const int &v, Emitter<int> &emitter, StageContext &) {
            emitter.emit(v, true);
        });
    ManualContext mc;
    std::thread runner([&] {
        StageContext ctx = mc.make();
        stage.run(ctx);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    mc.source.request_stop();
    runner.join();
    EXPECT_EQ(out->version(), 0u);
}

} // namespace
} // namespace anytime
