/**
 * @file
 * Tests for the reusable WorkerPool and for automatons running on
 * borrowed pool workers instead of dedicated jthreads — the executor
 * substrate of the serving runtime.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <mutex>
#include <set>
#include <thread>

#include "core/automaton.hpp"
#include "core/source_stage.hpp"
#include "core/worker_pool.hpp"
#include "support/error.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

/** Slow counting automaton on the given worker count. */
struct CounterRig
{
    Automaton automaton;
    std::shared_ptr<VersionedBuffer<long>> out;

    explicit CounterRig(std::uint64_t steps, std::uint64_t step_us = 0,
                        unsigned workers = 1)
    {
        out = automaton.makeBuffer<long>("out");
        automaton.addStage(
            std::make_shared<DiffusiveSourceStage<long>>(
                "counter", out, 0L, steps,
                [step_us](std::uint64_t, long &state, StageContext &) {
                    state += 1;
                    if (step_us > 0)
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(step_us));
                },
                /*publish_period=*/8, /*batch=*/1),
            workers);
    }
};

TEST(WorkerPool, ExecutesSubmittedTasks)
{
    WorkerPool pool(2);
    std::atomic<int> counter{0};
    std::latch done(4);
    for (int i = 0; i < 4; ++i)
        pool.submit([&] {
            counter.fetch_add(1);
            done.count_down();
        });
    done.wait();
    EXPECT_EQ(counter.load(), 4);
    pool.shutdown(); // joins, so completion counts are settled
    EXPECT_EQ(pool.tasksCompleted(), 4u);
}

TEST(WorkerPool, RecyclesThreadsAcrossTasks)
{
    WorkerPool pool(2);
    std::mutex mutex;
    std::set<std::thread::id> ids;
    std::latch done(8);
    for (int i = 0; i < 8; ++i)
        pool.submit([&] {
            {
                std::lock_guard lock(mutex);
                ids.insert(std::this_thread::get_id());
            }
            done.count_down();
        });
    done.wait();
    // 8 tasks ran on at most the pool's 2 long-lived threads.
    EXPECT_LE(ids.size(), 2u);
    EXPECT_GE(ids.size(), 1u);
}

TEST(WorkerPool, ZeroThreadsIsFatal)
{
    EXPECT_THROW(WorkerPool(0), FatalError);
}

TEST(WorkerPool, SubmitAfterShutdownIsFatal)
{
    WorkerPool pool(1);
    pool.shutdown();
    EXPECT_THROW(pool.submit([] {}), FatalError);
}

TEST(PooledAutomaton, RunsToCompletionOnBorrowedWorkers)
{
    WorkerPool pool(2);
    CounterRig rig(128);
    rig.automaton.start(pool);
    EXPECT_TRUE(rig.automaton.waitUntilDone(10s));
    rig.automaton.shutdown();
    EXPECT_TRUE(rig.automaton.complete());
    EXPECT_EQ(*rig.out->read().value, 128);
}

TEST(PooledAutomaton, SequentialRunsReuseTheSamePool)
{
    WorkerPool pool(2);
    for (int run = 0; run < 5; ++run) {
        CounterRig rig(64);
        rig.automaton.start(pool);
        EXPECT_TRUE(rig.automaton.waitUntilDone(10s));
        rig.automaton.shutdown();
        EXPECT_TRUE(rig.out->final());
    }
    EXPECT_EQ(pool.size(), 2u);
    // The done callback fires inside the pool task, so the last
    // worker's completion bookkeeping can trail waitUntilDone briefly.
    const auto give_up = std::chrono::steady_clock::now() + 10s;
    while (pool.tasksCompleted() < 5u &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    EXPECT_GE(pool.tasksCompleted(), 5u);
}

TEST(PooledAutomaton, StopYieldsValidApproximateOutput)
{
    WorkerPool pool(1);
    CounterRig rig(1u << 20, 20); // ~20 s if left alone
    rig.automaton.start(pool);
    std::this_thread::sleep_for(20ms);
    rig.automaton.stop();
    EXPECT_TRUE(rig.automaton.waitUntilDone(10s));
    rig.automaton.shutdown();
    EXPECT_FALSE(rig.automaton.complete());
    const auto snap = rig.out->read();
    ASSERT_TRUE(snap);
    EXPECT_GT(*snap.value, 0);
    // The pool survives the aborted run and stays usable.
    CounterRig next(32);
    next.automaton.start(pool);
    EXPECT_TRUE(next.automaton.waitUntilDone(10s));
    next.automaton.shutdown();
    EXPECT_TRUE(next.out->final());
}

TEST(PooledAutomaton, PauseAndStopJoinCleanly)
{
    WorkerPool pool(1);
    CounterRig rig(1u << 20, 20);
    rig.automaton.start(pool);
    std::this_thread::sleep_for(5ms);
    rig.automaton.pause();
    std::this_thread::sleep_for(5ms);
    rig.automaton.stop(); // must release the pause gate
    EXPECT_TRUE(rig.automaton.waitUntilDone(10s));
    rig.automaton.shutdown();
}

TEST(PooledAutomaton, GangLargerThanPoolIsRejected)
{
    WorkerPool pool(2);
    CounterRig rig(64, 0, /*workers=*/3);
    EXPECT_THROW(rig.automaton.start(pool), FatalError);
}

TEST(PooledAutomaton, DoneCallbackFiresOnceWhenAllWorkersExit)
{
    WorkerPool pool(2);
    CounterRig rig(64, 0, /*workers=*/2);
    std::atomic<int> fired{0};
    std::latch done(1);
    rig.automaton.setDoneCallback([&] {
        fired.fetch_add(1);
        done.count_down();
    });
    rig.automaton.start(pool);
    done.wait();
    EXPECT_EQ(fired.load(), 1);
    rig.automaton.shutdown();
    EXPECT_TRUE(rig.automaton.complete());
}

TEST(OwnedAutomaton, DoneCallbackAlsoFiresWithDedicatedThreads)
{
    CounterRig rig(64);
    std::latch done(1);
    rig.automaton.setDoneCallback([&] { done.count_down(); });
    rig.automaton.start();
    done.wait();
    rig.automaton.shutdown();
    EXPECT_TRUE(rig.automaton.complete());
}

} // namespace
} // namespace anytime
