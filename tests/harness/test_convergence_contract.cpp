/**
 * @file
 * Tests for the online convergence estimator (dynamic accuracy-metric
 * stopping) and the contract planner (deadline-driven operating-point
 * selection), including an end-to-end auto-stop of a real automaton.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "apps/conv2d.hpp"
#include "core/contract.hpp"
#include "core/controller.hpp"
#include "harness/convergence.hpp"
#include "harness/profiler.hpp"
#include "image/generate.hpp"
#include "image/metrics.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

TEST(ConvergenceEstimator, ValidatesParameters)
{
    EXPECT_THROW(ConvergenceEstimator(0.0), FatalError);
    EXPECT_THROW(ConvergenceEstimator(0.1, 0), FatalError);
}

TEST(ConvergenceEstimator, ConvergesAfterQuietVersions)
{
    ConvergenceEstimator estimator(0.05, 2);
    EXPECT_FALSE(estimator.converged());
    estimator.observe(10.0, 100.0); // 10% delta: loud
    EXPECT_FALSE(estimator.converged());
    estimator.observe(2.0, 100.0); // 2%: quiet (1/2)
    EXPECT_FALSE(estimator.converged());
    estimator.observe(1.0, 100.0); // 1%: quiet (2/2)
    EXPECT_TRUE(estimator.converged());
    EXPECT_EQ(estimator.observed(), 3u);
}

TEST(ConvergenceEstimator, LoudVersionResetsPatience)
{
    ConvergenceEstimator estimator(0.05, 2);
    estimator.observe(1.0, 100.0);
    estimator.observe(20.0, 100.0); // plateau ends: loud again
    estimator.observe(1.0, 100.0);
    EXPECT_FALSE(estimator.converged());
    estimator.observe(1.0, 100.0);
    EXPECT_TRUE(estimator.converged());
}

TEST(ConvergenceEstimator, ZeroMagnitudeUsesAbsoluteDelta)
{
    ConvergenceEstimator estimator(0.5, 1);
    estimator.observe(0.1, 0.0);
    EXPECT_TRUE(estimator.converged());
}

TEST(VersionDeltaRms, KnownValues)
{
    const std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> b{1.0, 2.0, 5.0};
    const auto [delta, magnitude] = versionDeltaRms(a, b);
    EXPECT_NEAR(delta, std::sqrt(4.0 / 3.0), 1e-12);
    EXPECT_NEAR(magnitude, std::sqrt(30.0 / 3.0), 1e-12);
    const std::vector<double> wrong{1.0};
    EXPECT_THROW(versionDeltaRms(a, wrong), FatalError);
}

TEST(ConvergenceEstimator, AutoStopsConv2dWithGoodAccuracy)
{
    // End-to-end: stop the conv2d automaton from its own version
    // stream, with no access to the precise output; then check (with
    // the oracle) that the result was actually accurate.
    const GrayImage scene = generateScene(128, 128, 21);
    const Kernel kernel = Kernel::boxBlur(2);
    const GrayImage precise = convolve(scene, kernel);

    Conv2dConfig config;
    config.publishCount = 64;
    auto bundle = makeConv2dAutomaton(scene, kernel, config);

    auto estimator =
        std::make_shared<ConvergenceEstimator>(0.02, 2);
    auto previous = std::make_shared<std::shared_ptr<const GrayImage>>();
    bundle.output->addObserver([=](const Snapshot<GrayImage> &snap) {
        if (*previous) {
            const auto [delta, magnitude] =
                versionDeltaRms((*previous)->data(),
                                snap.value->data());
            estimator->observe(delta, magnitude);
        }
        *previous = snap.value;
    });

    const RunOutcome outcome = runUntilAcceptable(
        *bundle.automaton, [=] { return estimator->converged(); },
        200us);

    const auto snap = bundle.output->read();
    ASSERT_TRUE(snap);
    // Whether it auto-stopped early or completed, the output must be a
    // good approximation of the precise result by the time the
    // estimator called convergence.
    EXPECT_GT(signalToNoiseDb(precise, *snap.value), 15.0);
    (void)outcome;
}

TEST(ContractPlanner, ValidatesInput)
{
    EXPECT_THROW(ContractPlanner({}), FatalError);
    EXPECT_THROW(ContractPlanner({{2.0, 1.0, false}, {1.0, 2.0, true}}),
                 FatalError);
}

TEST(ContractPlanner, BestRespectsDeadline)
{
    ContractPlanner planner({{0.1, 10.0, false},
                             {0.2, 16.0, false},
                             {0.5, 24.0, false},
                             {1.2, 1e9, true}});
    EXPECT_FALSE(planner.best(0.05).has_value());
    EXPECT_DOUBLE_EQ(planner.best(0.15)->quality, 10.0);
    EXPECT_DOUBLE_EQ(planner.best(0.6)->quality, 24.0);
    EXPECT_TRUE(planner.best(2.0)->precise);
}

TEST(ContractPlanner, DeadlineForQuality)
{
    ContractPlanner planner(
        {{0.1, 10.0, false}, {0.5, 24.0, false}, {1.2, 1e9, true}});
    EXPECT_DOUBLE_EQ(*planner.deadlineFor(10.0), 0.1);
    EXPECT_DOUBLE_EQ(*planner.deadlineFor(20.0), 0.5);
    EXPECT_DOUBLE_EQ(*planner.deadlineFor(1e9), 1.2);
    EXPECT_DOUBLE_EQ(*planner.preciseDeadline(), 1.2);

    ContractPlanner no_precise({{0.1, 10.0, false}});
    EXPECT_FALSE(no_precise.deadlineFor(99.0).has_value());
    EXPECT_FALSE(no_precise.preciseDeadline().has_value());
}

TEST(ContractPlanner, BuiltFromRealProfile)
{
    // Profile a real automaton once, then plan contracts against it.
    const GrayImage scene = generateScene(96, 96, 22);
    const Kernel kernel = Kernel::boxBlur(1);
    const GrayImage precise = convolve(scene, kernel);

    auto bundle = makeConv2dAutomaton(scene, kernel);
    const auto profile = profileToCompletion<GrayImage>(
        *bundle.automaton, *bundle.output,
        [&](const GrayImage &img) {
            return signalToNoiseDb(precise, img);
        },
        1.0);

    std::vector<ContractPoint> points;
    for (const auto &p : profile)
        points.push_back({p.seconds, p.accuracyDb, p.final});
    ContractPlanner planner(std::move(points));

    ASSERT_TRUE(planner.preciseDeadline().has_value());
    const auto best =
        planner.best(*planner.preciseDeadline());
    ASSERT_TRUE(best.has_value());
    EXPECT_TRUE(best->precise);
}

} // namespace
} // namespace anytime
