/**
 * @file
 * Tests for the profiling harness and report formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/source_stage.hpp"
#include "harness/profiler.hpp"
#include "harness/report.hpp"
#include "harness/stats_report.hpp"

namespace anytime {
namespace {

TEST(TimelineRecorder, CapturesEveryVersionWithTimestamps)
{
    Automaton automaton;
    auto out = automaton.makeBuffer<long>("out");
    automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
        "counter", out, 0L, 100,
        [](std::uint64_t, long &state, StageContext &) { state += 1; },
        /*publish_period=*/10));

    TimelineRecorder<long> recorder(*out);
    recorder.startClock();
    automaton.start();
    automaton.waitUntilDone();
    automaton.shutdown();

    const auto entries = recorder.entries();
    ASSERT_GE(entries.size(), 10u);
    for (std::size_t i = 1; i < entries.size(); ++i) {
        EXPECT_GE(entries[i].seconds, entries[i - 1].seconds);
        EXPECT_EQ(entries[i].version, entries[i - 1].version + 1);
    }
    EXPECT_TRUE(entries.back().final);
    EXPECT_EQ(*entries.back().value, 100);
}

TEST(Profiler, ProfileToCompletionScoresEveryVersion)
{
    Automaton automaton;
    auto out = automaton.makeBuffer<long>("out");
    automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
        "counter", out, 0L, 64,
        [](std::uint64_t, long &state, StageContext &) { state += 1; },
        /*publish_period=*/8));

    const auto profile = profileToCompletion<long>(
        automaton, *out,
        [](const long &v) { return static_cast<double>(v); },
        /*baseline_seconds=*/2.0);

    ASSERT_GE(profile.size(), 8u);
    EXPECT_EQ(profile.back().accuracyDb, 64.0);
    EXPECT_TRUE(profile.back().final);
    for (const auto &point : profile) {
        EXPECT_DOUBLE_EQ(point.normalizedRuntime, point.seconds / 2.0);
        EXPECT_GE(point.version, 1u);
    }
}

TEST(Profiler, TimeBestOfRunsAndReturnsPositive)
{
    int calls = 0;
    const double t = timeBestOf([&] { ++calls; }, 3);
    EXPECT_EQ(calls, 3);
    EXPECT_GE(t, 0.0);
}

TEST(Report, FormatDouble)
{
    EXPECT_EQ(formatDouble(1.23456, 3), "1.235");
    EXPECT_EQ(formatDouble(2.0, 1), "2.0");
    EXPECT_EQ(
        formatDouble(std::numeric_limits<double>::infinity(), 3), "inf");
    EXPECT_EQ(formatDouble(-std::numeric_limits<double>::infinity(), 3),
              "-inf");
    EXPECT_EQ(formatDouble(std::nan(""), 3), "nan");
}

TEST(Report, ProfileTableHasExpectedShape)
{
    std::vector<ProfilePoint> profile(2);
    profile[0] = {0.1, 0.5, 1, 12.5, false};
    profile[1] = {0.2, 1.0, 2,
                  std::numeric_limits<double>::infinity(), true};
    const SeriesTable table = profileTable("fig", profile);
    ASSERT_EQ(table.rows.size(), 2u);
    EXPECT_EQ(table.columns.size(), 5u);
    EXPECT_EQ(table.rows[0][0], "0.500");
    EXPECT_EQ(table.rows[1][3], "inf");
    EXPECT_EQ(table.rows[1][4], "yes");
}

TEST(Report, StageStatsTableSummarizesARun)
{
    Automaton automaton;
    auto out = automaton.makeBuffer<long>("out");
    automaton.addStage(std::make_shared<DiffusiveSourceStage<long>>(
        "counter", out, 0L, 100,
        [](std::uint64_t, long &state, StageContext &) { state += 1; },
        /*publish_period=*/25));
    automaton.start();
    automaton.waitUntilDone();
    automaton.shutdown();

    const SeriesTable table = stageStatsTable(automaton);
    ASSERT_EQ(table.rows.size(), 1u);
    EXPECT_EQ(table.rows[0][0], "counter");
    EXPECT_EQ(table.rows[0][1], "1");
    EXPECT_EQ(table.rows[0][2], "100"); // steps
    EXPECT_EQ(table.rows[0][5], "yes"); // final
}

TEST(Report, WriteCsvRoundTrips)
{
    SeriesTable table;
    table.title = "t";
    table.columns = {"a", "b"};
    table.rows = {{"1", "2"}, {"3", "4"}};
    const std::string path =
        (std::filesystem::temp_directory_path() / "anytime_report.csv")
            .string();
    writeCsv(table, path);
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::getline(in, line);
    EXPECT_EQ(line, "3,4");
    std::remove(path.c_str());
}

} // namespace
} // namespace anytime
