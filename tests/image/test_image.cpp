/**
 * @file
 * Tests for the image container and conversions.
 */

#include <gtest/gtest.h>

#include "image/image.hpp"

namespace anytime {
namespace {

TEST(Image, ConstructionAndFill)
{
    GrayImage image(4, 3, 7);
    EXPECT_EQ(image.width(), 4u);
    EXPECT_EQ(image.height(), 3u);
    EXPECT_EQ(image.size(), 12u);
    for (std::size_t i = 0; i < image.size(); ++i)
        EXPECT_EQ(image[i], 7);
    image.fill(9);
    EXPECT_EQ(image.at(3, 2), 9);
}

TEST(Image, ZeroDimensionRejected)
{
    EXPECT_THROW(GrayImage(0, 4), FatalError);
    EXPECT_THROW(GrayImage(4, 0), FatalError);
}

TEST(Image, RowMajorLayout)
{
    GrayImage image(3, 2);
    image.at(2, 1) = 42;
    EXPECT_EQ(image[1 * 3 + 2], 42);
    image[0] = 5;
    EXPECT_EQ(image.at(0, 0), 5);
}

TEST(Image, OutOfBoundsPanics)
{
    GrayImage image(3, 2);
    EXPECT_THROW(image.at(3, 0), PanicError);
    EXPECT_THROW(image.at(0, 2), PanicError);
}

TEST(Image, ClampedAtBorders)
{
    GrayImage image(2, 2);
    image.at(0, 0) = 1;
    image.at(1, 0) = 2;
    image.at(0, 1) = 3;
    image.at(1, 1) = 4;
    EXPECT_EQ(image.clampedAt(-5, -5), 1);
    EXPECT_EQ(image.clampedAt(9, -1), 2);
    EXPECT_EQ(image.clampedAt(-1, 9), 3);
    EXPECT_EQ(image.clampedAt(9, 9), 4);
    EXPECT_EQ(image.clampedAt(0, 1), 3);
}

TEST(Image, EqualityIsDeep)
{
    GrayImage a(2, 2, 1), b(2, 2, 1);
    EXPECT_EQ(a, b);
    b.at(1, 1) = 2;
    EXPECT_NE(a, b);
}

TEST(Image, FloatGrayConversionRoundTrip)
{
    GrayImage gray(3, 1);
    gray[0] = 0;
    gray[1] = 128;
    gray[2] = 255;
    const FloatImage f = toFloat(gray);
    EXPECT_FLOAT_EQ(f[1], 128.f);
    EXPECT_EQ(toGray(f), gray);
}

TEST(Image, ToGrayClampsAndRounds)
{
    FloatImage f(4, 1);
    f[0] = -10.f;
    f[1] = 300.f;
    f[2] = 99.4f;
    f[3] = 99.6f;
    const GrayImage g = toGray(f);
    EXPECT_EQ(g[0], 0);
    EXPECT_EQ(g[1], 255);
    EXPECT_EQ(g[2], 99);
    EXPECT_EQ(g[3], 100);
}

TEST(RgbPixel, PacksToThreeBytes)
{
    static_assert(sizeof(RgbPixel) == 3);
    RgbImage image(2, 2, RgbPixel{1, 2, 3});
    EXPECT_EQ(image.at(1, 1).g, 2);
}

} // namespace
} // namespace anytime
