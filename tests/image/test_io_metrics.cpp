/**
 * @file
 * Tests for PGM/PPM I/O and the accuracy metrics (SNR as the paper
 * defines it: dB relative to the precise output, infinity when exact).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "image/generate.hpp"
#include "image/io.hpp"
#include "image/metrics.hpp"

namespace anytime {
namespace {

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ImageIo, PgmRoundTrip)
{
    const GrayImage original = generateScene(37, 23, 1);
    const std::string path = tempPath("anytime_test.pgm");
    writePgm(original, path);
    const GrayImage loaded = readPgm(path);
    EXPECT_EQ(loaded, original);
    std::remove(path.c_str());
}

TEST(ImageIo, PpmRoundTrip)
{
    const RgbImage original = generateColorScene(16, 9, 2);
    const std::string path = tempPath("anytime_test.ppm");
    writePpm(original, path);
    const RgbImage loaded = readPpm(path);
    EXPECT_EQ(loaded, original);
    std::remove(path.c_str());
}

TEST(ImageIo, CommentsInHeaderAreSkipped)
{
    const std::string path = tempPath("anytime_comment.pgm");
    {
        std::ofstream out(path, std::ios::binary);
        out << "P5\n# a comment\n2 1\n# another\n255\n";
        out.put(static_cast<char>(11));
        out.put(static_cast<char>(22));
    }
    const GrayImage loaded = readPgm(path);
    EXPECT_EQ(loaded.width(), 2u);
    EXPECT_EQ(loaded[0], 11);
    EXPECT_EQ(loaded[1], 22);
    std::remove(path.c_str());
}

TEST(ImageIo, MalformedFilesRejected)
{
    const std::string path = tempPath("anytime_bad.pgm");
    {
        std::ofstream out(path, std::ios::binary);
        out << "P5\n4 4\n255\nXY"; // truncated raster
    }
    EXPECT_THROW(readPgm(path), FatalError);
    {
        std::ofstream out(path, std::ios::binary);
        out << "P6\n1 1\n255\nabc";
    }
    EXPECT_THROW(readPgm(path), FatalError); // wrong magic
    EXPECT_THROW(readPgm(tempPath("anytime_missing.pgm")), FatalError);
    std::remove(path.c_str());
}

TEST(Metrics, IdenticalImagesAreInfiniteSnr)
{
    const GrayImage image = generateScene(16, 16, 3);
    EXPECT_TRUE(std::isinf(signalToNoiseDb(image, image)));
    EXPECT_GT(signalToNoiseDb(image, image), 0);
    EXPECT_EQ(meanSquaredError(image, image), 0.0);
    EXPECT_TRUE(std::isinf(peakSignalToNoiseDb(image, image)));
}

TEST(Metrics, KnownMse)
{
    GrayImage a(2, 1), b(2, 1);
    a[0] = 10;
    a[1] = 20;
    b[0] = 13; // diff 3
    b[1] = 16; // diff 4
    EXPECT_DOUBLE_EQ(meanSquaredError(a, b), (9.0 + 16.0) / 2.0);
    EXPECT_DOUBLE_EQ(rootMeanSquaredError(a, b), std::sqrt(12.5));
}

TEST(Metrics, KnownSnr)
{
    GrayImage ref(1, 1), approx(1, 1);
    ref[0] = 100;
    approx[0] = 90; // signal 10000, noise 100 -> 20 dB
    EXPECT_NEAR(signalToNoiseDb(ref, approx), 20.0, 1e-9);
}

TEST(Metrics, SnrDecreasesWithMoreNoise)
{
    const GrayImage ref = generateScene(32, 32, 4);
    GrayImage light = ref, heavy = ref;
    for (std::size_t i = 0; i < ref.size(); i += 7)
        light[i] = static_cast<std::uint8_t>(light[i] ^ 0x04);
    for (std::size_t i = 0; i < ref.size(); i += 2)
        heavy[i] = static_cast<std::uint8_t>(heavy[i] ^ 0x20);
    EXPECT_GT(signalToNoiseDb(ref, light), signalToNoiseDb(ref, heavy));
}

TEST(Metrics, DimensionMismatchRejected)
{
    GrayImage a(2, 2), b(3, 2);
    EXPECT_THROW(meanSquaredError(a, b), FatalError);
    EXPECT_THROW(signalToNoiseDb(a, b), FatalError);
}

TEST(Metrics, RgbOverloadsMatchChannelFlattening)
{
    RgbImage ref(1, 1, RgbPixel{100, 0, 0});
    RgbImage approx(1, 1, RgbPixel{90, 0, 0});
    EXPECT_NEAR(signalToNoiseDb(ref, approx), 20.0, 1e-9);
    EXPECT_DOUBLE_EQ(meanSquaredError(ref, approx), 100.0 / 3.0);
}

TEST(Generate, Deterministic)
{
    EXPECT_EQ(generateScene(32, 32, 7), generateScene(32, 32, 7));
    EXPECT_NE(generateScene(32, 32, 7), generateScene(32, 32, 8));
    EXPECT_EQ(generateColorScene(16, 16, 7),
              generateColorScene(16, 16, 7));
}

TEST(Generate, SceneHasSpreadHistogram)
{
    // histeq needs non-degenerate intensity mass.
    const GrayImage scene = generateScene(64, 64, 9);
    unsigned buckets[4] = {};
    for (std::size_t i = 0; i < scene.size(); ++i)
        ++buckets[scene[i] / 64];
    for (unsigned count : buckets)
        EXPECT_GT(count, scene.size() / 100)
            << "intensity quartile nearly empty";
}

TEST(Generate, ValueNoiseInUnitRange)
{
    const FloatImage noise = generateValueNoise(40, 30, 11);
    for (std::size_t i = 0; i < noise.size(); ++i) {
        ASSERT_GE(noise[i], 0.f);
        ASSERT_LE(noise[i], 1.f);
    }
}

TEST(Generate, BayerMosaicPattern)
{
    RgbImage color(4, 4);
    for (std::size_t y = 0; y < 4; ++y)
        for (std::size_t x = 0; x < 4; ++x)
            color.at(x, y) = RgbPixel{10, 20, 30};
    const GrayImage mosaic = bayerMosaic(color);
    EXPECT_EQ(mosaic.at(0, 0), 10); // R
    EXPECT_EQ(mosaic.at(1, 0), 20); // G
    EXPECT_EQ(mosaic.at(0, 1), 20); // G
    EXPECT_EQ(mosaic.at(1, 1), 30); // B
}

} // namespace
} // namespace anytime
