/**
 * @file
 * Tests for progressive block-fill reconstruction: at every prefix of a
 * tree-sampled sweep the image is completely covered, and after the
 * full sweep every pixel holds exactly its own sampled value.
 */

#include <gtest/gtest.h>

#include "image/progressive.hpp"

namespace anytime {
namespace {

TEST(Progressive, FirstSampleFillsWholeImage)
{
    TreePermutation perm = TreePermutation::twoDim(8, 8);
    GrayImage image(8, 8, 0);
    fillTreeBlock(image, perm, 0, std::uint8_t{42});
    for (std::size_t i = 0; i < image.size(); ++i)
        EXPECT_EQ(image[i], 42);
}

TEST(Progressive, FullSweepEqualsPerPixelValues)
{
    // After all samples, every pixel holds f(x, y) exactly: block fill
    // refines away completely.
    TreePermutation perm = TreePermutation::twoDim(8, 8);
    GrayImage image(8, 8, 0);
    const auto f = [](std::size_t x, std::size_t y) {
        return static_cast<std::uint8_t>(31 * x + 7 * y + 1);
    };
    for (std::uint64_t step = 0; step < perm.size(); ++step) {
        const auto [x, y] = treeSampleCoords(perm, step, 8);
        fillTreeBlock(image, perm, step, f(x, y));
    }
    for (std::size_t y = 0; y < 8; ++y)
        for (std::size_t x = 0; x < 8; ++x)
            ASSERT_EQ(image.at(x, y), f(x, y)) << x << "," << y;
}

TEST(Progressive, NonPow2FullSweepEqualsPerPixelValues)
{
    TreePermutation perm = TreePermutation::twoDim(6, 10);
    GrayImage image(10, 6, 0);
    const auto f = [](std::size_t x, std::size_t y) {
        return static_cast<std::uint8_t>(13 * x + 5 * y + 3);
    };
    for (std::uint64_t step = 0; step < perm.size(); ++step) {
        const auto [x, y] = treeSampleCoords(perm, step, 10);
        fillTreeBlock(image, perm, step, f(x, y));
    }
    for (std::size_t y = 0; y < 6; ++y)
        for (std::size_t x = 0; x < 10; ++x)
            ASSERT_EQ(image.at(x, y), f(x, y)) << x << "," << y;
}

TEST(Progressive, EveryPrefixIsFullyCovered)
{
    TreePermutation perm = TreePermutation::twoDim(16, 12);
    GrayImage image(12, 16, 0); // 0 = uncovered sentinel
    for (std::uint64_t step = 0; step < perm.size(); ++step) {
        fillTreeBlock(image, perm, step, std::uint8_t{1});
        if (step == 0 || step == 3 || step == 17 || step == 100) {
            for (std::size_t i = 0; i < image.size(); ++i)
                ASSERT_EQ(image[i], 1)
                    << "pixel " << i << " uncovered at step " << step;
        }
    }
}

TEST(Progressive, IntermediateSweepApproximatesSmoothField)
{
    // On a smooth field, a quarter sweep should already be a decent
    // approximation (this is the essence of the paper's Figure 16).
    TreePermutation perm = TreePermutation::twoDim(32, 32);
    GrayImage precise(32, 32), approx(32, 32, 0);
    const auto f = [](std::size_t x, std::size_t y) {
        return static_cast<std::uint8_t>(4 * x + 3 * y);
    };
    for (std::size_t y = 0; y < 32; ++y)
        for (std::size_t x = 0; x < 32; ++x)
            precise.at(x, y) = f(x, y);
    for (std::uint64_t step = 0; step < perm.size() / 4; ++step) {
        const auto [x, y] = treeSampleCoords(perm, step, 32);
        fillTreeBlock(approx, perm, step, f(x, y));
    }
    double max_err = 0;
    for (std::size_t i = 0; i < precise.size(); ++i)
        max_err = std::max(max_err,
                           std::abs(static_cast<double>(precise[i]) -
                                    approx[i]));
    // A quarter sweep resolves 16x16 blocks of 2x2: error bounded by
    // one block's worth of field variation.
    EXPECT_LE(max_err, 4.0 + 3.0 + 1.0);
}

} // namespace
} // namespace anytime
