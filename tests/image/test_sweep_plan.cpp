/**
 * @file
 * Tests for the precomputed tree-sweep plan: it must agree exactly with
 * the on-the-fly permutation + block-extent computation it caches.
 */

#include <gtest/gtest.h>

#include "image/progressive.hpp"

namespace anytime {
namespace {

TEST(TreeSweepPlan, MatchesPermutationCoordinates)
{
    const std::pair<std::size_t, std::size_t> shapes[] = {
        {8, 8}, {16, 4}, {6, 10}, {13, 7}};
    for (const auto &[h, w] : shapes) {
        TreePermutation perm = TreePermutation::twoDim(h, w);
        TreeSweepPlan plan(perm);
        ASSERT_EQ(plan.size(), perm.size());
        for (std::uint64_t i = 0; i < perm.size(); ++i) {
            const auto [x, y] = treeSampleCoords(perm, i, w);
            ASSERT_EQ(plan.x(i), x) << "ordinal " << i;
            ASSERT_EQ(plan.y(i), y) << "ordinal " << i;
        }
    }
}

TEST(TreeSweepPlan, FillMatchesFillTreeBlock)
{
    TreePermutation perm = TreePermutation::twoDim(12, 20);
    TreeSweepPlan plan(perm);
    GrayImage via_plan(20, 12, 0), via_block(20, 12, 0);
    for (std::uint64_t i = 0; i < perm.size(); ++i) {
        const auto value = static_cast<std::uint8_t>((i * 37 + 5) & 0xff);
        plan.fill(via_plan, i, value);
        fillTreeBlock(via_block, perm, i, value);
        if (i % 16 == 0) {
            ASSERT_EQ(via_plan, via_block) << "diverged at ordinal " << i;
        }
    }
    EXPECT_EQ(via_plan, via_block);
}

TEST(TreeSweepPlan, FullSweepAssignsEveryPixelItsOwnValue)
{
    TreePermutation perm = TreePermutation::twoDim(9, 11);
    TreeSweepPlan plan(perm);
    GrayImage image(11, 9, 0);
    for (std::uint64_t i = 0; i < plan.size(); ++i) {
        plan.fill(image, i,
                  static_cast<std::uint8_t>(
                      (plan.x(i) * 31 + plan.y(i) * 7 + 1) & 0xff));
    }
    for (std::size_t y = 0; y < 9; ++y)
        for (std::size_t x = 0; x < 11; ++x)
            ASSERT_EQ(image.at(x, y),
                      static_cast<std::uint8_t>((x * 31 + y * 7 + 1) &
                                                0xff));
}

} // namespace
} // namespace anytime
