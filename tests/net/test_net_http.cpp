/**
 * @file
 * HTTP adapter tests: the socket-free parser/encoder helpers, and the
 * live endpoints over loopback — GET /metrics serving the Prometheus
 * registry, /healthz, 404s, and the /stream Server-Sent-Events door
 * delivering progressive versions through chunked encoding.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <memory>
#include <string>

#include "net/client.hpp"
#include "net/http.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"

namespace anytime::net {
namespace {

using namespace std::chrono_literals;

TEST(HttpParser, ParsesRequestLineQueryAndHeaders)
{
    const std::string raw =
        "GET /stream?pipeline=counter&input=64%3A200%3A8&min_quality=0.5 "
        "HTTP/1.1\r\n"
        "Host: localhost\r\n"
        "Accept: text/event-stream\r\n"
        "\r\nleftover";
    std::size_t consumed = 0;
    const auto request = parseHttpRequest(raw, consumed);
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(consumed, raw.size() - 8); // "leftover" stays unread
    EXPECT_EQ(request->method, "GET");
    EXPECT_EQ(request->path, "/stream");
    EXPECT_EQ(request->query.at("pipeline"), "counter");
    EXPECT_EQ(request->query.at("input"), "64:200:8"); // %3A decoded
    EXPECT_EQ(request->query.at("min_quality"), "0.5");
    EXPECT_EQ(request->headers.at("host"), "localhost");
    EXPECT_EQ(request->headers.at("accept"), "text/event-stream");
}

TEST(HttpParser, IncompleteHeadAsksForMoreBytes)
{
    std::size_t consumed = 0;
    EXPECT_FALSE(
        parseHttpRequest("GET / HTTP/1.1\r\nHost: x\r\n", consumed)
            .has_value());
}

TEST(HttpParser, MalformedRequestLineYieldsEmptyMethod)
{
    std::size_t consumed = 0;
    const auto request =
        parseHttpRequest("NONSENSE\r\n\r\n", consumed);
    ASSERT_TRUE(request.has_value());
    EXPECT_TRUE(request->method.empty());
}

TEST(HttpHelpers, UrlDecodeHandlesEscapesPlusAndGarbage)
{
    EXPECT_EQ(urlDecode("a%20b+c"), "a b c");
    EXPECT_EQ(urlDecode("100%"), "100%"); // bad escape kept verbatim
    EXPECT_EQ(urlDecode("%3a%3A"), "::");
}

TEST(HttpHelpers, JsonEscapeCoversQuotesBackslashesAndControls)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(HttpHelpers, ChunkedSseEventsRoundTripThroughDecode)
{
    const std::string body = sseEvent("version", "{\"v\":1}") +
                             sseEvent("done", "{\"ok\":true}") +
                             chunkedFinal();
    const auto decoded = decodeChunked(body);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, "event: version\ndata: {\"v\":1}\n\n"
                        "event: done\ndata: {\"ok\":true}\n\n");
}

TEST(HttpHelpers, DecodeChunkedRejectsMalformedFraming)
{
    EXPECT_FALSE(decodeChunked("zz\r\nhello\r\n").has_value());
    EXPECT_FALSE(decodeChunked("5\r\nhel").has_value());
    EXPECT_FALSE(decodeChunked("5\r\nhelloXX0\r\n\r\n").has_value());
}

struct HttpRig
{
    obs::MetricsRegistry registry;
    std::unique_ptr<NetServer> server;

    HttpRig()
    {
        NetServerConfig config;
        config.catalog = std::make_shared<PipelineCatalog>();
        registerCounterPipeline(*config.catalog);
        config.metricsRegistry = &registry;
        config.service.workers = 2;
        server = std::make_unique<NetServer>(std::move(config));
    }

    ClientOptions
    client() const
    {
        ClientOptions options;
        options.port = server->port();
        options.timeout = 10000ms;
        return options;
    }
};

TEST(HttpEndpoints, MetricsServesThePrometheusRegistry)
{
    HttpRig rig;
    const auto response = httpGet(rig.client(), "/metrics");
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.status, 200);
    // The net layer's own counters are registered at startup, so the
    // exposition must mention them (plus HELP/TYPE comments).
    EXPECT_NE(response.body.find("anytime_net_connections_total"),
              std::string::npos);
    EXPECT_NE(response.body.find("# TYPE"), std::string::npos);
}

TEST(HttpEndpoints, HealthzAndPipelinesAnswer)
{
    HttpRig rig;
    const auto health = httpGet(rig.client(), "/healthz");
    ASSERT_TRUE(health.ok) << health.error;
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(health.body, "ok\n");

    const auto pipelines = httpGet(rig.client(), "/pipelines");
    ASSERT_TRUE(pipelines.ok) << pipelines.error;
    EXPECT_EQ(pipelines.status, 200);
    EXPECT_NE(pipelines.body.find("\"counter\""), std::string::npos);
}

TEST(HttpEndpoints, UnknownPathIs404)
{
    HttpRig rig;
    const auto missing = httpGet(rig.client(), "/no-such-endpoint");
    ASSERT_TRUE(missing.ok) << missing.error;
    EXPECT_EQ(missing.status, 404);
}

TEST(HttpEndpoints, StreamDeliversProgressiveSseEvents)
{
    HttpRig rig;
    const auto response = httpGet(
        rig.client(),
        "/stream?pipeline=counter&input=64:500:8&deadline_ms=10000");
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.headers.at("content-type"),
              "text/event-stream");
    EXPECT_NE(response.body.find("event: accepted"),
              std::string::npos);
    EXPECT_NE(response.body.find("event: version"), std::string::npos);
    EXPECT_NE(response.body.find("event: done"), std::string::npos);
    // The final version and terminal status ride in the JSON bodies.
    EXPECT_NE(response.body.find("\"payload\":\"64\""),
              std::string::npos);
    EXPECT_NE(response.body.find("\"final\":true"), std::string::npos);
    EXPECT_NE(response.body.find("\"status\":\"precise\""),
              std::string::npos);
}

TEST(HttpEndpoints, StreamValidatesItsQuery)
{
    HttpRig rig;
    const auto missing = httpGet(rig.client(), "/stream");
    ASSERT_TRUE(missing.ok) << missing.error;
    EXPECT_EQ(missing.status, 400);

    const auto unknown = httpGet(
        rig.client(), "/stream?pipeline=does-not-exist");
    ASSERT_TRUE(unknown.ok) << unknown.error;
    EXPECT_EQ(unknown.status, 400);

    const auto garbled = httpGet(
        rig.client(),
        "/stream?pipeline=counter&deadline_ms=not-a-number");
    ASSERT_TRUE(garbled.ok) << garbled.error;
    EXPECT_EQ(garbled.status, 400);

    // Values that parse as numbers but are semantically hostile: NaN
    // or out-of-range quality floors (NaN would break the coalesce
    // map's key ordering), negative or absurd deadlines (UB when cast
    // to u64 / added to a time_point), and a zero gang width. All must
    // stop at the boundary with a 400, not reach the service.
    for (const char *target :
         {"/stream?pipeline=counter&min_quality=nan",
          "/stream?pipeline=counter&min_quality=inf",
          "/stream?pipeline=counter&min_quality=1.5",
          "/stream?pipeline=counter&min_quality=-1",
          "/stream?pipeline=counter&deadline_ms=-5",
          "/stream?pipeline=counter&deadline_ms=nan",
          "/stream?pipeline=counter&deadline_ms=1e300",
          "/stream?pipeline=counter&workers=0"}) {
        const auto hostile = httpGet(rig.client(), target);
        ASSERT_TRUE(hostile.ok) << target << ": " << hostile.error;
        EXPECT_EQ(hostile.status, 400) << target;
    }
    EXPECT_EQ(rig.server->service().metricsSnapshot().total(), 0u);
}

TEST(HttpEndpoints, UnterminatedHeaderFloodSeversTheConnection)
{
    HttpRig rig;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(rig.server->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);

    // Header bytes forever, never the terminating CRLFCRLF: the inbox
    // cap must sever the connection instead of buffering the flood for
    // as long as the client cares to keep sending.
    const std::string junk = "GET / HTTP/1.1\r\nX-Filler: " +
                             std::string(1024, 'a') + "\r\n";
    bool severed = false;
    std::size_t sent = 0;
    while (sent < (std::size_t(8) << 20)) {
        const ssize_t n =
            ::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL);
        if (n < 0) {
            severed = true; // RST from the server's close
            break;
        }
        sent += static_cast<std::size_t>(n);
        char probe;
        const ssize_t r = ::recv(fd, &probe, 1, MSG_DONTWAIT);
        if (r == 0 ||
            (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
            severed = true; // orderly close (or reset) observed
            break;
        }
    }
    ::close(fd);
    EXPECT_TRUE(severed) << "server buffered " << sent
                         << " header bytes without closing";
}

} // namespace
} // namespace anytime::net
