/**
 * @file
 * End-to-end observability over loopback: one streamed request must
 * produce ONE stitched trace — client, reactor, service, and stage
 * spans all stamped with the same wire-propagated trace id — and the
 * live debug endpoints (/requestz, /statusz) must serve well-formed
 * JSON showing the request's quality staircase and the server's
 * runtime shape. The traceparent query parameter on the HTTP door
 * joins an external trace the same way the binary frames do.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../obs/json_check.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace anytime::net {
namespace {

using namespace std::chrono_literals;

struct Rig
{
    obs::MetricsRegistry registry;
    std::unique_ptr<NetServer> server;

    Rig()
    {
        NetServerConfig config;
        config.catalog = std::make_shared<PipelineCatalog>();
        registerCounterPipeline(*config.catalog);
        config.metricsRegistry = &registry;
        config.service.workers = 2;
        server = std::make_unique<NetServer>(std::move(config));
    }

    ClientOptions
    client() const
    {
        ClientOptions options;
        options.port = server->port();
        options.timeout = 10000ms;
        return options;
    }
};

RequestFrame
counterRequestFrame(std::string input, std::uint64_t deadline_us)
{
    RequestFrame frame;
    frame.pipeline = "counter";
    frame.input = std::move(input);
    frame.deadlineMicros = deadline_us;
    return frame;
}

std::string
traceHex(std::uint64_t id)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(id));
    return buf;
}

std::string
exportTrace()
{
    std::ostringstream out;
    obs::writeChromeTrace(out);
    return out.str();
}

/** Split the export into one string per trace event. */
std::vector<std::string>
traceEvents(const std::string &json)
{
    std::vector<std::string> events;
    const std::string open = "{\"name\":\"";
    std::size_t pos = json.find(open);
    while (pos != std::string::npos) {
        const std::size_t next = json.find(open, pos + open.size());
        events.push_back(json.substr(
            pos, next == std::string::npos ? json.size() - pos
                                           : next - pos));
        pos = next;
    }
    return events;
}

bool
hasEventWith(const std::vector<std::string> &events,
             const std::string &category, const std::string &idNeedle)
{
    const std::string cat = "\"cat\":\"" + category + "\"";
    for (const std::string &event : events)
        if (event.find(cat) != std::string::npos &&
            event.find(idNeedle) != std::string::npos)
            return true;
    return false;
}

/** Tracing on for the test body, reliably off afterwards. */
class NetObservability : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::setTracingEnabled(false);
        obs::clearTrace();
        obs::setTracingEnabled(true);
    }

    void
    TearDown() override
    {
        obs::setTracingEnabled(false);
        obs::clearTrace();
    }
};

#if ANYTIME_TRACE_COMPILED_IN
TEST_F(NetObservability, SingleRequestProducesOneStitchedTrace)
{
    Rig rig;
    const auto result = runRequest(
        rig.client(), counterRequestFrame("64:500:8", 10000000));
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_TRUE(result.done.has_value());
    ASSERT_TRUE(result.accepted.has_value());
    ASSERT_NE(result.traceId, 0u);
    // The server echoed the client-minted id back on ACCEPTED.
    EXPECT_EQ(result.accepted->traceId, result.traceId);

    // Stage workers may still be winding down when DONE reaches the
    // client; poll until their spans land in the ring.
    const std::string needle =
        "\"trace\":\"" + traceHex(result.traceId) + "\"";
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    std::vector<std::string> events;
    bool stitched = false;
    while (std::chrono::steady_clock::now() < deadline) {
        events = traceEvents(exportTrace());
        stitched = hasEventWith(events, "client", needle) &&
                   hasEventWith(events, "net", needle) &&
                   hasEventWith(events, "service", needle) &&
                   hasEventWith(events, "stage", needle);
        if (stitched)
            break;
        std::this_thread::sleep_for(20ms);
    }
    obs::setTracingEnabled(false);

    const std::string json = exportTrace();
    EXPECT_TRUE(testjson::isValidJson(json));
    EXPECT_TRUE(stitched)
        << "categories carrying " << needle << ":"
        << " client=" << hasEventWith(events, "client", needle)
        << " net=" << hasEventWith(events, "net", needle)
        << " service=" << hasEventWith(events, "service", needle)
        << " stage=" << hasEventWith(events, "stage", needle);
}
#endif // ANYTIME_TRACE_COMPILED_IN

TEST_F(NetObservability, RequestzShowsTheQualityStaircase)
{
    Rig rig;
    const auto result = runRequest(
        rig.client(), counterRequestFrame("64:500:8", 10000000));
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_TRUE(result.done.has_value());

    // The timeline moves to the finished ring at harvest; poll for it.
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    HttpResult page;
    while (std::chrono::steady_clock::now() < deadline) {
        page = httpGet(rig.client(), "/requestz");
        ASSERT_TRUE(page.ok) << page.error;
        if (page.body.find("\"finished\":true") != std::string::npos)
            break;
        std::this_thread::sleep_for(20ms);
    }
    EXPECT_EQ(page.status, 200);
    EXPECT_EQ(page.headers.at("content-type"), "application/json");
    EXPECT_TRUE(testjson::isValidJson(page.body)) << page.body;
    EXPECT_NE(page.body.find("\"pipeline\":\"counter\""),
              std::string::npos);
    EXPECT_NE(page.body.find("\"points\":["), std::string::npos);
    EXPECT_NE(page.body.find("\"circuits\":"), std::string::npos);
    // The full staircase: as many recorded points as wire versions,
    // non-decreasing in quality.
    const auto qualities =
        testjson::numbersAfterKey(page.body, "quality");
    ASSERT_GE(qualities.size(), result.versions.size());
    for (std::size_t i = 1; i < qualities.size(); ++i)
        EXPECT_GE(qualities[i], qualities[i - 1]);
}

TEST_F(NetObservability, StatuszReportsTheRuntimeShape)
{
    Rig rig;
    const auto page = httpGet(rig.client(), "/statusz");
    ASSERT_TRUE(page.ok) << page.error;
    EXPECT_EQ(page.status, 200);
    EXPECT_EQ(page.headers.at("content-type"), "application/json");
    EXPECT_TRUE(testjson::isValidJson(page.body)) << page.body;
    for (const char *key :
         {"\"protocol_version\"", "\"trace_compiled_in\"",
          "\"uptime_seconds\"", "\"workers\"", "\"in_use\"",
          "\"queue\"", "\"connections\"", "\"streams\"",
          "\"accept_buckets\"", "\"tracing\"", "\"flight_recorder\""})
        EXPECT_NE(page.body.find(key), std::string::npos) << key;
    const auto workers =
        testjson::numbersAfterKey(page.body, "total");
    ASSERT_FALSE(workers.empty());
    EXPECT_DOUBLE_EQ(workers.front(), 2.0);
}

TEST_F(NetObservability, TraceparentQueryJoinsTheHttpStream)
{
    Rig rig;
    const auto response = httpGet(
        rig.client(),
        "/stream?pipeline=counter&input=32:200:4&deadline_ms=5000"
        "&traceparent=00-0123456789abcdeffedcba9876543210-"
        "00f067aa0ba902b7-01");
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("event: accepted"), std::string::npos);
    // Low 64 bits of the W3C trace-id field become the stream's id and
    // are echoed in the accepted event.
    EXPECT_NE(response.body.find("\"traceId\":\"fedcba9876543210\""),
              std::string::npos)
        << response.body;
}

TEST_F(NetObservability, MalformedTraceparentStillStreams)
{
    Rig rig;
    const auto response = httpGet(
        rig.client(),
        "/stream?pipeline=counter&input=32:200:4&deadline_ms=5000"
        "&traceparent=not-a-trace");
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.status, 200);
    // Server minted its own id instead: present and non-zero.
    EXPECT_NE(response.body.find("\"traceId\":\""), std::string::npos);
    EXPECT_EQ(response.body.find("\"traceId\":\"0000000000000000\""),
              std::string::npos);
}

} // namespace
} // namespace anytime::net
