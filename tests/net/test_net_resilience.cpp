/**
 * @file
 * Resilience of the network front-end: reconnect-and-resume through
 * the coalescing replay ring (bit-identical to an unsevered run),
 * linger-expiry cancel of orphaned streams, the resilient client's
 * retry/backoff/give-up policy, a slow SSE consumer still receiving
 * its final, and a graceful drain over the wire.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"

namespace anytime::net {
namespace {

using namespace std::chrono_literals;

double
counterValue(const obs::MetricsRegistry &registry,
             const std::string &name)
{
    for (const auto &row : registry.snapshot())
        if (row.name == name)
            return row.value;
    return -1.0;
}

void
expectAccountingIdentity(const ServiceMetrics &metrics)
{
    EXPECT_EQ(metrics.total(),
              metrics.served() + metrics.shed() + metrics.expired() +
                  metrics.failed() + metrics.cancelled() +
                  metrics.degraded());
}

bool
awaitTotal(AnytimeServer &service, std::size_t total,
           std::chrono::milliseconds budget)
{
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start < budget) {
        if (service.metricsSnapshot().total() >= total)
            return true;
        std::this_thread::sleep_for(5ms);
    }
    return service.metricsSnapshot().total() >= total;
}

struct Rig
{
    obs::MetricsRegistry registry;
    std::unique_ptr<NetServer> server;

    explicit Rig(std::function<void(NetServerConfig &)> tune = nullptr)
    {
        NetServerConfig config;
        config.catalog = std::make_shared<PipelineCatalog>();
        registerCounterPipeline(*config.catalog);
        config.metricsRegistry = &registry;
        config.service.workers = 2;
        if (tune)
            tune(config);
        server = std::make_unique<NetServer>(std::move(config));
    }

    ClientOptions
    client(std::chrono::milliseconds timeout = 10000ms) const
    {
        ClientOptions options;
        options.port = server->port();
        options.timeout = timeout;
        return options;
    }
};

RequestFrame
counterRequestFrame(std::string input, std::uint64_t deadline_us,
                    double min_quality = 0.0)
{
    RequestFrame frame;
    frame.pipeline = "counter";
    frame.input = std::move(input);
    frame.deadlineMicros = deadline_us;
    frame.minQuality = min_quality;
    return frame;
}

TEST(NetResume, ReconnectResumesMonotoneAndBitIdenticalToUnsevered)
{
    // Ground truth: the same request run unsevered on a plain rig.
    const std::string input = "60:3000:6"; // ~180 ms, 10 versions
    Rig baselineRig;
    const auto baseline = runRequest(
        baselineRig.client(), counterRequestFrame(input, 10'000'000));
    ASSERT_TRUE(baseline.ok) << baseline.error;
    ASSERT_TRUE(baseline.done.has_value());
    ASSERT_FALSE(baseline.versions.empty());
    const VersionFrame baselineFinal = baseline.versions.back();
    ASSERT_TRUE(baselineFinal.final);

    // Rig under test: a generous resume window keeps the orphaned
    // stream computing after the sever.
    Rig rig([](NetServerConfig &config) {
        config.resumeLingerMicros = 2'000'000;
    });

    // First connection: sever from the client side after two versions
    // (the callback-returns-false rehearsal of a dropped link).
    std::uint64_t lastSeen = 0;
    const auto severed = runRequest(
        rig.client(), counterRequestFrame(input, 10'000'000),
        [&](const VersionFrame &frame) {
            lastSeen = frame.version;
            return frame.version < 2;
        });
    ASSERT_TRUE(severed.severed);
    ASSERT_GE(lastSeen, 2u);

    // Reconnect with the last-seen version: the identical frame finds
    // the lingering entry under its coalescing key and the replay ring
    // fills the gap — every frame strictly after lastSeen, strictly
    // monotone, ending in the same final bits the unsevered run got.
    RequestFrame resume = counterRequestFrame(input, 10'000'000);
    resume.resumeFromVersion = lastSeen;
    const auto resumed = runRequest(rig.client(), resume);
    ASSERT_TRUE(resumed.ok) << resumed.error;
    ASSERT_TRUE(resumed.done.has_value());
    ASSERT_FALSE(resumed.versions.empty());
    std::uint64_t previous = lastSeen;
    for (const VersionFrame &frame : resumed.versions) {
        EXPECT_GT(frame.version, lastSeen);
        if (!frame.final)
            EXPECT_GT(frame.version, previous);
        previous = frame.version;
    }
    const VersionFrame &resumedFinal = resumed.versions.back();
    EXPECT_TRUE(resumedFinal.final);
    EXPECT_EQ(resumedFinal.version, baselineFinal.version);
    EXPECT_EQ(resumedFinal.payload, baselineFinal.payload);

    // Both connections fed ONE service request: the reconnect
    // coalesced onto the live entry instead of re-running the work.
    ASSERT_TRUE(awaitTotal(rig.server->service(), 1, 5000ms));
    const ServiceMetrics metrics =
        rig.server->service().metricsSnapshot();
    EXPECT_EQ(metrics.total(), 1u);
    EXPECT_EQ(metrics.served(), 1u);
    expectAccountingIdentity(metrics);
    EXPECT_GE(counterValue(rig.registry,
                           "anytime_net_coalesced_total"),
              1.0);
}

TEST(NetResume, LingerExpiryCancelsTheOrphanedStream)
{
    Rig rig([](NetServerConfig &config) {
        config.resumeLingerMicros = 100'000;
    });
    // ~8 s pipeline, severed after the first version: nobody resumes
    // within the 100 ms window, so the sweep must cancel the orphan
    // long before its natural runtime.
    const auto started = std::chrono::steady_clock::now();
    const auto severed = runRequest(
        rig.client(), counterRequestFrame("8000:1000:100", 30'000'000),
        [](const VersionFrame &) { return false; });
    ASSERT_TRUE(severed.severed);
    ASSERT_TRUE(awaitTotal(rig.server->service(), 1, 5000ms));
    EXPECT_LT(std::chrono::steady_clock::now() - started, 6s);
    const ServiceMetrics metrics =
        rig.server->service().metricsSnapshot();
    EXPECT_EQ(metrics.cancelled(), 1u);
    expectAccountingIdentity(metrics);
}

TEST(NetResilientClient, ResumesAcrossReadTimeoutsMonotone)
{
    // Version cadence slower than the client's read timeout: every
    // attempt times out mid-stream, reconnects, and resumes from its
    // last-seen version against the lingering entry. 120 steps of
    // 5 ms publishing every 40 → versions at ~200/~400 ms, final at
    // ~600 ms, all gaps (200 ms) beyond the 150 ms timeout.
    Rig rig([](NetServerConfig &config) {
        config.resumeLingerMicros = 5'000'000;
    });
    ResilienceOptions resilience;
    resilience.maxAttempts = 20;
    resilience.backoffBase = 5ms;
    const auto result = runResilientRequest(
        rig.client(150ms), counterRequestFrame("120:5000:40", 30'000'000),
        resilience);
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_TRUE(result.done.has_value());
    EXPECT_GE(result.attempts, 2u);
    EXPECT_GE(result.resumes, 1u);
    ASSERT_FALSE(result.versions.empty());

    // The caller-visible stream is strictly monotone across however
    // many transports failed under it, and ends precise.
    for (std::size_t i = 1; i < result.versions.size(); ++i)
        EXPECT_GT(result.versions[i].version,
                  result.versions[i - 1].version);
    EXPECT_TRUE(result.versions.back().final);
    EXPECT_EQ(result.versions.back().payload, "120");
    expectAccountingIdentity(rig.server->service().metricsSnapshot());
}

TEST(NetResilientClient, DeadEndpointExhaustsItsAttempts)
{
    // Reserve a port with no listener: every connect is refused, so
    // the client burns exactly maxAttempts and reports the transport
    // error (nothing to resume: resumes stays 0).
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof addr),
              0);
    socklen_t len = sizeof addr;
    ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);
    const std::uint16_t deadPort = ntohs(addr.sin_port);
    ::close(fd); // bound but never listening: connects are refused

    ClientOptions options;
    options.port = deadPort;
    options.timeout = 500ms;
    ResilienceOptions resilience;
    resilience.maxAttempts = 3;
    resilience.backoffBase = 1ms;
    const auto result = runResilientRequest(
        options, counterRequestFrame("8:100:2", 1'000'000), resilience);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.attempts, 3u);
    EXPECT_EQ(result.resumes, 0u);
    EXPECT_FALSE(result.error.empty());
}

TEST(NetResilientClient, OverallDeadlineBoundsTheRetrying)
{
    // Long backoffs against a dead port under a tight overall
    // deadline: the client gives up before sleeping past the bound
    // instead of burning all its attempts.
    ClientOptions options;
    options.port = 1; // reserved port: connection refused
    options.timeout = 200ms;
    ResilienceOptions resilience;
    resilience.maxAttempts = 50;
    resilience.backoffBase = 100ms;
    resilience.overallDeadline = 250ms;
    const auto started = std::chrono::steady_clock::now();
    const auto result = runResilientRequest(
        options, counterRequestFrame("8:100:2", 1'000'000), resilience);
    EXPECT_FALSE(result.ok);
    EXPECT_LT(result.attempts, 50u);
    EXPECT_LT(std::chrono::steady_clock::now() - started, 5s);
    EXPECT_NE(result.error.find("gave up: overall deadline"),
              std::string::npos)
        << result.error;
}

TEST(NetSse, SlowConsumerStillReceivesItsFinal)
{
    // A consumer dribbling 1 byte per 100 ms while the pipeline runs
    // to precise: backpressure may shed intermediates, but the final
    // and DONE must reach even the slowest reader.
    Rig rig;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(rig.server->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    const std::string request =
        "GET /stream?pipeline=counter&input=30:2000:6&deadline_ms="
        "10000 HTTP/1.1\r\nHost: localhost\r\n\r\n";
    ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(request.size()));

    // ~60 ms pipeline; dribble for ~1.2 s so the whole stream is
    // produced (and buffered server-side) while we crawl.
    std::string raw;
    for (int i = 0; i < 12; ++i) {
        char byte;
        const ssize_t n = ::recv(fd, &byte, 1, 0);
        ASSERT_GT(n, 0) << "stream ended early at byte " << i;
        raw.push_back(byte);
        std::this_thread::sleep_for(100ms);
    }
    // Then drain the rest at full speed until the server closes.
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        raw.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    EXPECT_NE(raw.find("event: version"), std::string::npos);
    EXPECT_NE(raw.find("\"final\":true"), std::string::npos);
    EXPECT_NE(raw.find("event: done"), std::string::npos);
    EXPECT_NE(raw.find("\"status\":\"precise\""), std::string::npos);
    ASSERT_TRUE(awaitTotal(rig.server->service(), 1, 5000ms));
    expectAccountingIdentity(rig.server->service().metricsSnapshot());
}

TEST(NetDrain, DrainAnnouncesSalvagesAndRefusesNewConnections)
{
    Rig rig;
    // An in-flight SSE stream over a ~10 s pipeline: the drain must
    // announce itself, salvage the request degraded at grace expiry,
    // and flush the terminal events before closing.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(rig.server->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    const std::string request =
        "GET /stream?pipeline=counter&input=10000:1000:50&deadline_ms="
        "30000 HTTP/1.1\r\nHost: localhost\r\n\r\n";
    ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(request.size()));

    std::string raw;
    std::thread reader([&] {
        char buf[4096];
        for (;;) {
            const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
            if (n <= 0)
                break;
            raw.append(buf, static_cast<std::size_t>(n));
        }
    });

    // Let the stream publish a few versions, then drain with a grace
    // far shorter than the pipeline's remaining runtime.
    std::this_thread::sleep_for(300ms);
    rig.server->drain(200ms);
    reader.join();
    ::close(fd);

    EXPECT_NE(raw.find("event: drain"), std::string::npos);
    EXPECT_NE(raw.find("event: done"), std::string::npos);
    EXPECT_NE(raw.find("\"status\":\"degraded\""), std::string::npos);
    EXPECT_TRUE(rig.server->draining());

    // The listener is gone: new clients are refused at connect.
    const auto refused = httpGet(rig.client(1000ms), "/healthz");
    EXPECT_FALSE(refused.ok);

    const ServiceMetrics metrics =
        rig.server->service().metricsSnapshot();
    EXPECT_EQ(metrics.total(), 1u);
    EXPECT_EQ(metrics.degraded(), 1u);
    expectAccountingIdentity(metrics);
    EXPECT_GE(counterValue(rig.registry,
                           "anytime_drain_streams_flushed_total"),
              1.0);
    EXPECT_GE(counterValue(rig.registry, "anytime_drain_begun_total"),
              1.0);
    EXPECT_GE(counterValue(rig.registry,
                           "anytime_drain_salvaged_total"),
              1.0);
}

} // namespace
} // namespace anytime::net
