/**
 * @file
 * Loopback end-to-end tests of the network front-end: progressive
 * streaming bit-identical to the in-process run, deadline/min-quality
 * transport, disconnect-as-cancel with the accounting identity intact,
 * request coalescing, and accept-time admission control.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "support/sync.hpp"

namespace anytime::net {
namespace {

using namespace std::chrono_literals;

double
counterValue(const obs::MetricsRegistry &registry,
             const std::string &name)
{
    for (const auto &row : registry.snapshot())
        if (row.name == name)
            return row.value;
    return -1.0;
}

void
expectAccountingIdentity(const ServiceMetrics &metrics)
{
    EXPECT_EQ(metrics.total(),
              metrics.served() + metrics.shed() + metrics.expired() +
                  metrics.failed() + metrics.cancelled() +
                  metrics.degraded());
}

/** Poll until the service has recorded @p total responses. */
bool
awaitTotal(AnytimeServer &service, std::size_t total,
           std::chrono::milliseconds budget)
{
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start < budget) {
        if (service.metricsSnapshot().total() >= total)
            return true;
        std::this_thread::sleep_for(5ms);
    }
    return service.metricsSnapshot().total() >= total;
}

struct Rig
{
    obs::MetricsRegistry registry;
    std::unique_ptr<NetServer> server;

    explicit Rig(std::function<void(NetServerConfig &)> tune = nullptr)
    {
        NetServerConfig config;
        config.catalog = std::make_shared<PipelineCatalog>();
        registerCounterPipeline(*config.catalog);
        config.metricsRegistry = &registry;
        config.service.workers = 2;
        if (tune)
            tune(config);
        server = std::make_unique<NetServer>(std::move(config));
    }

    ClientOptions
    client(std::chrono::milliseconds timeout = 10000ms) const
    {
        ClientOptions options;
        options.port = server->port();
        options.timeout = timeout;
        return options;
    }
};

RequestFrame
counterRequestFrame(std::string input, std::uint64_t deadline_us,
                    double min_quality = 0.0)
{
    RequestFrame frame;
    frame.pipeline = "counter";
    frame.input = std::move(input);
    frame.deadlineMicros = deadline_us;
    frame.minQuality = min_quality;
    return frame;
}

/**
 * Run the same catalog pipeline in process, capturing every version
 * the sink publishes — the ground truth the wire stream must match.
 */
std::map<std::uint64_t, std::string>
inProcessVersions(const std::string &input, std::uint64_t deadline_us)
{
    obs::MetricsRegistry registry;
    ServerConfig config;
    config.workers = 2;
    config.metricsRegistry = &registry;
    AnytimeServer server(config);

    PipelineCatalog catalog;
    registerCounterPipeline(catalog);
    NetRequestParams params;
    params.input = input;
    params.deadline = std::chrono::microseconds(deadline_us);

    std::map<std::uint64_t, std::string> versions;
    Mutex mutex;
    ServiceRequest request;
    request.name = "counter";
    request.factory = catalog.build("counter", params).factory;
    request.deadline = params.deadline;
    request.versionSink = [&versions,
                           &mutex](const VersionUpdate &update) {
        MutexLock lock(mutex);
        if (update.payload)
            versions[update.version] = *update.payload;
    };
    auto future = server.submit(std::move(request));
    EXPECT_EQ(future.wait_for(20s), std::future_status::ready);
    EXPECT_EQ(future.get().status, ServiceStatus::preciseCompleted);
    return versions;
}

TEST(NetServer, StreamsProgressiveVersionsBitIdenticalToInProcess)
{
    const std::string input = "64:500:8"; // 8 versions, ~32 ms run
    const auto expected = inProcessVersions(input, 10000000);
    ASSERT_GE(expected.size(), 2u);

    Rig rig;
    const auto result =
        runRequest(rig.client(), counterRequestFrame(input, 10000000));
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_TRUE(result.accepted.has_value());
    EXPECT_GT(result.accepted->requestId, 0u);
    ASSERT_TRUE(result.done.has_value());
    EXPECT_EQ(result.done->status,
              static_cast<std::uint8_t>(
                  ServiceStatus::preciseCompleted));
    EXPECT_TRUE(result.done->reachedPrecise);
    EXPECT_TRUE(result.done->deadlineMet);

    // The anytime contract over the wire: at least two progressive
    // versions, strictly monotone in version number and quality, the
    // last one final — and every payload bit-identical to what the
    // in-process sink observed for the same version number.
    ASSERT_GE(result.versions.size(), 2u);
    for (std::size_t i = 0; i < result.versions.size(); ++i) {
        const VersionFrame &version = result.versions[i];
        if (i > 0) {
            EXPECT_GT(version.version, result.versions[i - 1].version);
            EXPECT_GE(version.quality, result.versions[i - 1].quality);
        }
        const auto it = expected.find(version.version);
        ASSERT_NE(it, expected.end())
            << "wire version " << version.version
            << " never published in process";
        EXPECT_EQ(version.payload, it->second);
    }
    EXPECT_TRUE(result.versions.back().final);
    EXPECT_EQ(result.versions.back().payload, "64");
    EXPECT_DOUBLE_EQ(result.versions.back().quality, 1.0);
    EXPECT_FALSE(std::isnan(result.firstVersionSeconds));
    // The server measured its half of first-version latency too.
    EXPECT_GE(result.done->firstVersionSeconds, 0.0);
}

TEST(NetServer, DeadlineTravelsInTheRequestHeader)
{
    Rig rig;
    // ~100 s of work against a 300 ms deadline, publishing every
    // 50 ms: the server must stop it at the deadline and still have
    // streamed intermediate versions.
    const auto result = runRequest(
        rig.client(), counterRequestFrame("100000:1000:50", 300000));
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_TRUE(result.done.has_value());
    EXPECT_EQ(result.done->status,
              static_cast<std::uint8_t>(ServiceStatus::deadlineApprox));
    EXPECT_FALSE(result.done->reachedPrecise);
    EXPECT_GE(result.versions.size(), 1u);
    EXPECT_FALSE(result.versions.back().final);
    EXPECT_LT(result.done->totalSeconds, 5.0);
}

TEST(NetServer, MinQualityTravelsAndStopsEarlyUnderBacklog)
{
    Rig rig([](NetServerConfig &config) {
        config.service.workers = 1;
        config.coalesce = false; // two distinct live requests
    });
    // Two requests on one worker: the first declares minQuality 0.25,
    // so once the second is backlogged the first stops near a quarter
    // of its 4 s run instead of hogging the worker to the deadline.
    std::thread second([&] {
        std::this_thread::sleep_for(150ms);
        const auto result = runRequest(
            rig.client(), counterRequestFrame("200:1000:20", 10000000));
        EXPECT_TRUE(result.ok) << result.error;
    });
    const auto result =
        runRequest(rig.client(),
                   counterRequestFrame("4000:1000:50", 10000000, 0.25));
    second.join();
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_TRUE(result.done.has_value());
    EXPECT_EQ(result.done->status,
              static_cast<std::uint8_t>(ServiceStatus::qualityStopped));
    EXPECT_GE(result.done->quality, 0.25);
    EXPECT_LT(result.done->totalSeconds, 3.5);
}

TEST(NetServer, ClientDisconnectCancelsTheRequest)
{
    Rig rig;
    // ~8 s of work; the client severs after the first version. The
    // server must translate the hangup into a cancel — and account it.
    const auto started = std::chrono::steady_clock::now();
    const auto result = runRequest(
        rig.client(), counterRequestFrame("8000:1000:100", 30000000),
        [](const VersionFrame &) { return false; });
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(result.severed);
    EXPECT_FALSE(result.done.has_value());

    ASSERT_TRUE(awaitTotal(rig.server->service(), 1, 5000ms))
        << "request never reached a terminal state after disconnect";
    const auto elapsed = std::chrono::steady_clock::now() - started;
    EXPECT_LT(elapsed, 6s) << "cancel did not stop the pipeline early";
    const ServiceMetrics metrics =
        rig.server->service().metricsSnapshot();
    EXPECT_EQ(metrics.total(), 1u);
    EXPECT_EQ(metrics.cancelled(), 1u);
    EXPECT_EQ(metrics.served(), 0u);
    expectAccountingIdentity(metrics);
}

TEST(NetServer, IdenticalRequestsCoalesceOntoOneBuild)
{
    Rig rig;
    const RequestFrame frame =
        counterRequestFrame("2000:1000:50", 20000000);

    ClientResult first;
    std::thread early([&] {
        first = runRequest(rig.client(), frame);
    });
    std::this_thread::sleep_for(300ms); // let the first one dispatch
    const auto second = runRequest(rig.client(), frame);
    early.join();

    ASSERT_TRUE(first.ok) << first.error;
    ASSERT_TRUE(second.ok) << second.error;
    ASSERT_TRUE(first.done.has_value());
    ASSERT_TRUE(second.done.has_value());
    EXPECT_EQ(first.versions.back().payload, "2000");
    EXPECT_EQ(second.versions.back().payload, "2000");
    // Both clients share one request id and one pipeline execution.
    ASSERT_TRUE(first.accepted.has_value());
    ASSERT_TRUE(second.accepted.has_value());
    EXPECT_EQ(first.accepted->requestId, second.accepted->requestId);
    EXPECT_TRUE(awaitTotal(rig.server->service(), 1, 5000ms));
    EXPECT_EQ(rig.server->service().metricsSnapshot().total(), 1u);
    EXPECT_GE(counterValue(rig.registry, "anytime_net_coalesced_total"),
              1.0);
}

TEST(NetServer, ConnectionCapRejectsAtAccept)
{
    Rig rig([](NetServerConfig &config) {
        config.maxConnections = 0; // reject everything
    });
    const auto result = runRequest(
        rig.client(2000ms), counterRequestFrame("32:200:8", 1000000));
    EXPECT_FALSE(result.ok);
    EXPECT_GE(counterValue(rig.registry,
                           "anytime_net_connections_rejected_total"),
              1.0);
}

TEST(NetServer, UnknownPipelineGetsAnErrorFrame)
{
    Rig rig;
    RequestFrame frame;
    frame.pipeline = "no-such-pipeline";
    frame.deadlineMicros = 1000000;
    const auto result = runRequest(rig.client(), frame);
    EXPECT_FALSE(result.ok);
    ASSERT_TRUE(result.serverError.has_value());
    EXPECT_NE(result.serverError->find("unknown pipeline"),
              std::string::npos);
}

TEST(NetServer, BadInputSpecGetsAnErrorFrame)
{
    Rig rig;
    const auto result = runRequest(
        rig.client(), counterRequestFrame("not-a-number", 1000000));
    EXPECT_FALSE(result.ok);
    ASSERT_TRUE(result.serverError.has_value());
    EXPECT_NE(result.serverError->find("bad input spec"),
              std::string::npos);
}

TEST(NetServer, HostileRequestParamsAreRejectedWithAnErrorFrame)
{
    Rig rig;
    // minQuality and deadlineMicros arrive as raw client-controlled
    // wire values. Each hostile value must bounce off the protocol
    // boundary as an ERROR frame on its own connection — out-of-range
    // minQuality used to reach submitTracked's fatalIf and throw
    // through the reactor thread (std::terminate: a one-frame remote
    // kill), and a NaN key would poison the coalesce map's ordering.
    std::vector<std::pair<RequestFrame, const char *>> hostile;
    hostile.emplace_back(counterRequestFrame("8:100:2", 1000000, 7.0),
                         "min_quality");
    hostile.emplace_back(counterRequestFrame("8:100:2", 1000000, -0.5),
                         "min_quality");
    hostile.emplace_back(
        counterRequestFrame("8:100:2", 1000000,
                            std::numeric_limits<double>::quiet_NaN()),
        "min_quality");
    hostile.emplace_back(
        counterRequestFrame("8:100:2", 1000000,
                            std::numeric_limits<double>::infinity()),
        "min_quality");
    hostile.emplace_back(
        counterRequestFrame(
            "8:100:2", std::numeric_limits<std::uint64_t>::max()),
        "deadline");
    RequestFrame zeroGang = counterRequestFrame("8:100:2", 1000000);
    zeroGang.stageWorkers = 0;
    hostile.emplace_back(zeroGang, "workers");

    for (const auto &[frame, needle] : hostile) {
        const auto result = runRequest(rig.client(), frame);
        EXPECT_FALSE(result.ok) << needle;
        ASSERT_TRUE(result.serverError.has_value()) << needle;
        EXPECT_NE(result.serverError->find(needle), std::string::npos)
            << *result.serverError;
    }

    // The reactor survived every attempt: a sane request still runs
    // to completion and the hostile ones never reached the service.
    const auto sane = runRequest(rig.client(),
                                 counterRequestFrame("8:100:2", 5000000));
    ASSERT_TRUE(sane.ok) << sane.error;
    ASSERT_TRUE(sane.done.has_value());
    EXPECT_EQ(rig.server->service().metricsSnapshot().total(), 1u);
}

TEST(NetServer, ShedRequestStillGetsAcceptedThenDone)
{
    Rig rig([](NetServerConfig &config) {
        config.service.workers = 1;
        config.service.maxQueueDepth = 1;
        config.coalesce = false;
    });
    // Saturate the single worker and the one queue slot, then submit
    // more: the overflow requests shed at admission, and the wire
    // still delivers ACCEPTED followed by a DONE carrying the shed
    // status — never a hang, never a dropped connection.
    std::vector<std::thread> busy;
    std::vector<ClientResult> results(3);
    for (int i = 0; i < 3; ++i)
        busy.emplace_back([&, i] {
            results[static_cast<std::size_t>(i)] = runRequest(
                rig.client(),
                counterRequestFrame("1500:1000:5" + std::to_string(i),
                                    20000000));
        });
    for (auto &thread : busy)
        thread.join();

    int sheds = 0;
    for (const auto &result : results) {
        ASSERT_TRUE(result.ok) << result.error;
        ASSERT_TRUE(result.done.has_value());
        if (result.done->status ==
                static_cast<std::uint8_t>(
                    ServiceStatus::shedQueueFull) ||
            result.done->status ==
                static_cast<std::uint8_t>(
                    ServiceStatus::shedPredictedMiss))
            ++sheds;
    }
    EXPECT_GE(sheds, 1);
    expectAccountingIdentity(rig.server->service().metricsSnapshot());
}

} // namespace
} // namespace anytime::net
