/**
 * @file
 * Wire-codec unit tests: exact round-trips for every frame type, the
 * incremental reader under adversarial chunking, strict rejection of
 * truncated/oversize/unknown/trailing-byte frames, and a seeded
 * random-corpus sweep (fuzz-ish, fully deterministic) asserting that
 * arbitrary byte soup never crashes the decoder and that random valid
 * frame sequences survive re-chunking bit-for-bit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "net/wire.hpp"

namespace anytime::net {
namespace {

void
expectFrameEq(const Frame &a, const Frame &b)
{
    ASSERT_EQ(a.index(), b.index());
    if (const auto *ra = std::get_if<RequestFrame>(&a)) {
        const auto &rb = std::get<RequestFrame>(b);
        EXPECT_EQ(ra->protocol, rb.protocol);
        EXPECT_EQ(ra->pipeline, rb.pipeline);
        EXPECT_EQ(ra->input, rb.input);
        EXPECT_EQ(ra->deadlineMicros, rb.deadlineMicros);
        EXPECT_EQ(ra->minQuality, rb.minQuality);
        EXPECT_EQ(ra->stageWorkers, rb.stageWorkers);
        EXPECT_EQ(ra->traceId, rb.traceId);
        EXPECT_EQ(ra->parentSpanId, rb.parentSpanId);
    } else if (const auto *aa = std::get_if<AcceptedFrame>(&a)) {
        EXPECT_EQ(aa->requestId, std::get<AcceptedFrame>(b).requestId);
        EXPECT_EQ(aa->traceId, std::get<AcceptedFrame>(b).traceId);
    } else if (const auto *va = std::get_if<VersionFrame>(&a)) {
        const auto &vb = std::get<VersionFrame>(b);
        EXPECT_EQ(va->version, vb.version);
        EXPECT_EQ(va->final, vb.final);
        EXPECT_EQ(va->degraded, vb.degraded);
        // NaN-safe: compare bit patterns, not values.
        EXPECT_EQ(std::isnan(va->quality), std::isnan(vb.quality));
        if (!std::isnan(va->quality)) {
            EXPECT_EQ(va->quality, vb.quality);
        }
        EXPECT_EQ(va->payload, vb.payload);
    } else if (const auto *da = std::get_if<DoneFrame>(&a)) {
        const auto &db = std::get<DoneFrame>(b);
        EXPECT_EQ(da->status, db.status);
        EXPECT_EQ(da->reachedPrecise, db.reachedPrecise);
        EXPECT_EQ(da->deadlineMet, db.deadlineMet);
        EXPECT_EQ(da->versionsPublished, db.versionsPublished);
        EXPECT_EQ(da->totalSeconds, db.totalSeconds);
    } else {
        EXPECT_EQ(std::get<ErrorFrame>(a).message,
                  std::get<ErrorFrame>(b).message);
    }
}

Frame
decodeOne(const std::string &bytes)
{
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    auto frame = reader.next();
    EXPECT_FALSE(reader.failed()) << reader.error();
    EXPECT_TRUE(frame.has_value());
    EXPECT_EQ(reader.buffered(), 0u);
    return frame.value_or(Frame{ErrorFrame{"missing"}});
}

TEST(WireCodec, RequestRoundTrip)
{
    RequestFrame request;
    request.pipeline = "counter";
    request.input = "1024:50:16";
    request.deadlineMicros = 750000;
    request.minQuality = 0.25;
    request.stageWorkers = 3;
    request.traceId = 0x0123456789abcdefULL;
    request.parentSpanId = 0xfedcba9876543210ULL;
    const Frame original{request};
    expectFrameEq(original, decodeOne(encodeFrame(original)));
}

TEST(WireCodec, VersionRoundTripWithNanQualityAndBinaryPayload)
{
    VersionFrame version;
    version.version = 41;
    version.final = true;
    version.degraded = true;
    // quality stays the default NaN
    version.payload = std::string("\x00\xff\x7f bytes", 9);
    const Frame original{version};
    expectFrameEq(original, decodeOne(encodeFrame(original)));
}

TEST(WireCodec, AcceptedDoneErrorRoundTrip)
{
    expectFrameEq(
        Frame{AcceptedFrame{77, 0xabcdull}},
        decodeOne(encodeFrame(Frame{AcceptedFrame{77, 0xabcdull}})));

    DoneFrame done;
    done.status = 1;
    done.reachedPrecise = true;
    done.deadlineMet = true;
    done.versionsPublished = 12;
    done.quality = 1.0;
    done.firstVersionSeconds = 0.0125;
    done.totalSeconds = 0.5;
    expectFrameEq(Frame{done}, decodeOne(encodeFrame(Frame{done})));

    expectFrameEq(Frame{ErrorFrame{"boom"}},
                  decodeOne(encodeFrame(Frame{ErrorFrame{"boom"}})));
}

TEST(WireCodec, FrameTypeTagsMatchAlternatives)
{
    EXPECT_EQ(frameType(Frame{RequestFrame{}}), FrameType::request);
    EXPECT_EQ(frameType(Frame{AcceptedFrame{}}), FrameType::accepted);
    EXPECT_EQ(frameType(Frame{VersionFrame{}}), FrameType::version);
    EXPECT_EQ(frameType(Frame{DoneFrame{}}), FrameType::done);
    EXPECT_EQ(frameType(Frame{ErrorFrame{}}), FrameType::error);
}

TEST(WireReader, ByteAtATimeFeedYieldsFramesInOrder)
{
    std::string stream;
    stream += encodeFrame(Frame{AcceptedFrame{1}});
    stream += encodeFrame(Frame{VersionFrame{2, false, false, 0.5,
                                             "half"}});
    stream += encodeFrame(Frame{DoneFrame{}});

    FrameReader reader;
    std::vector<Frame> frames;
    for (const char byte : stream) {
        reader.feed(&byte, 1);
        while (auto frame = reader.next())
            frames.push_back(std::move(*frame));
    }
    ASSERT_FALSE(reader.failed());
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frameType(frames[0]), FrameType::accepted);
    EXPECT_EQ(frameType(frames[1]), FrameType::version);
    EXPECT_EQ(std::get<VersionFrame>(frames[1]).payload, "half");
    EXPECT_EQ(frameType(frames[2]), FrameType::done);
}

TEST(WireReader, TruncatedFrameWaitsWithoutFailing)
{
    const std::string bytes = encodeFrame(Frame{ErrorFrame{"partial"}});
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size() - 3);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_FALSE(reader.failed());
    reader.feed(bytes.data() + bytes.size() - 3, 3);
    EXPECT_TRUE(reader.next().has_value());
    EXPECT_FALSE(reader.failed());
}

TEST(WireReader, RejectsZeroLengthFrame)
{
    const char zeros[4] = {0, 0, 0, 0};
    FrameReader reader;
    reader.feed(zeros, sizeof zeros);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.failed());
}

TEST(WireReader, RejectsOversizeFrame)
{
    // length = 2^31: far past kMaxFrameBytes.
    const unsigned char bytes[5] = {0x00, 0x00, 0x00, 0x80, 0x03};
    FrameReader reader;
    reader.feed(reinterpret_cast<const char *>(bytes), sizeof bytes);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.failed());
    EXPECT_NE(reader.error().find("bound"), std::string::npos);
}

TEST(WireReader, RejectsUnknownFrameType)
{
    // length 1, type 99, no body.
    const unsigned char bytes[5] = {0x01, 0x00, 0x00, 0x00, 99};
    FrameReader reader;
    reader.feed(reinterpret_cast<const char *>(bytes), sizeof bytes);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.failed());
}

TEST(WireReader, RejectsTrailingBytesInBody)
{
    std::string bytes = encodeFrame(Frame{AcceptedFrame{5}});
    // Grow the declared length by one and append a stray byte: the
    // u64 body now has a trailing byte the decoder must reject.
    bytes[0] = static_cast<char>(
        static_cast<unsigned char>(bytes[0]) + 1);
    bytes.push_back('\x42');
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.failed());
}

TEST(WireReader, RejectsTruncatedStringField)
{
    // ERROR frame whose string length claims more bytes than the body
    // holds: length 6 (type + u32), string length says 100.
    std::string bytes;
    const unsigned char head[5] = {0x05, 0x00, 0x00, 0x00, 0x05};
    bytes.append(reinterpret_cast<const char *>(head), sizeof head);
    const unsigned char strLen[4] = {100, 0, 0, 0};
    bytes.append(reinterpret_cast<const char *>(strLen), sizeof strLen);
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.failed());
}

TEST(WireReader, StaysFailedAfterCorruption)
{
    const char zeros[4] = {0, 0, 0, 0};
    FrameReader reader;
    reader.feed(zeros, sizeof zeros);
    EXPECT_FALSE(reader.next().has_value());
    ASSERT_TRUE(reader.failed());
    // Even a valid frame after the corruption is not decoded: framing
    // is lost for good.
    const std::string valid = encodeFrame(Frame{AcceptedFrame{1}});
    reader.feed(valid.data(), valid.size());
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.failed());
}

/** Deterministic pseudo-random frame for the corpus sweep. */
Frame
randomFrame(std::mt19937_64 &rng)
{
    std::uniform_int_distribution<int> pick(0, 4);
    std::uniform_int_distribution<std::size_t> len(0, 200);
    std::uniform_int_distribution<int> byte(0, 255);
    const auto randomString = [&] {
        std::string out(len(rng), '\0');
        for (char &ch : out)
            ch = static_cast<char>(byte(rng));
        return out;
    };
    switch (pick(rng)) {
      case 0: {
        RequestFrame frame;
        frame.pipeline = randomString();
        frame.input = randomString();
        frame.deadlineMicros = rng();
        frame.minQuality = std::uniform_real_distribution<>(0, 1)(rng);
        frame.stageWorkers = static_cast<std::uint32_t>(rng());
        frame.traceId = rng();
        frame.parentSpanId = rng();
        return frame;
      }
      case 1:
        return AcceptedFrame{rng(), rng()};
      case 2: {
        VersionFrame frame;
        frame.version = rng();
        frame.final = (rng() & 1) != 0;
        frame.degraded = (rng() & 1) != 0;
        frame.quality = std::uniform_real_distribution<>(0, 1)(rng);
        frame.payload = randomString();
        return frame;
      }
      case 3: {
        DoneFrame frame;
        frame.status = static_cast<std::uint8_t>(rng() % 10);
        frame.reachedPrecise = (rng() & 1) != 0;
        frame.deadlineMet = (rng() & 1) != 0;
        frame.versionsPublished = rng();
        frame.quality = std::uniform_real_distribution<>(0, 1)(rng);
        frame.totalSeconds = std::uniform_real_distribution<>(0, 9)(rng);
        return frame;
      }
      default:
        return ErrorFrame{randomString()};
    }
}

TEST(WireCorpus, RandomFrameSequencesSurviveRandomChunking)
{
    std::mt19937_64 rng(0xc0dec0deULL);
    for (int round = 0; round < 50; ++round) {
        std::vector<Frame> sent;
        std::string stream;
        std::uniform_int_distribution<int> count(1, 8);
        const int frames = count(rng);
        for (int i = 0; i < frames; ++i) {
            sent.push_back(randomFrame(rng));
            stream += encodeFrame(sent.back());
        }
        FrameReader reader;
        std::vector<Frame> received;
        std::size_t pos = 0;
        std::uniform_int_distribution<std::size_t> chunk(1, 97);
        while (pos < stream.size()) {
            const std::size_t n =
                std::min(chunk(rng), stream.size() - pos);
            reader.feed(stream.data() + pos, n);
            pos += n;
            while (auto frame = reader.next())
                received.push_back(std::move(*frame));
        }
        ASSERT_FALSE(reader.failed()) << reader.error();
        ASSERT_EQ(received.size(), sent.size());
        for (std::size_t i = 0; i < sent.size(); ++i)
            expectFrameEq(sent[i], received[i]);
    }
}

TEST(WireCorpus, RandomGarbageNeverCrashesAndFailsClosed)
{
    std::mt19937_64 rng(0xbadbadULL);
    std::uniform_int_distribution<int> byte(0, 255);
    for (int round = 0; round < 200; ++round) {
        std::string garbage(256, '\0');
        for (char &ch : garbage)
            ch = static_cast<char>(byte(rng));
        // Keep the declared length small so the reader actually
        // attempts a decode instead of waiting for 4 GiB.
        garbage[2] = 0;
        garbage[3] = 0;
        FrameReader reader;
        reader.feed(garbage.data(), garbage.size());
        int drained = 0;
        while (reader.next().has_value() && drained < 1000)
            ++drained; // decoding garbage may legitimately succeed
        // Either it failed closed or it parked waiting for bytes —
        // never an unbounded loop, never a crash.
        SUCCEED();
    }
}

TEST(WireCorpus, SingleFlippedBodyByteIsRejectedOrDecodesClean)
{
    std::mt19937_64 rng(0x5eedULL);
    for (int round = 0; round < 100; ++round) {
        std::string bytes = encodeFrame(randomFrame(rng));
        std::uniform_int_distribution<std::size_t> pos(4,
                                                       bytes.size() - 1);
        const std::size_t at = pos(rng);
        bytes[at] = static_cast<char>(bytes[at] ^ 0x20);
        FrameReader reader;
        reader.feed(bytes.data(), bytes.size());
        const auto frame = reader.next();
        // A flip may hit redundancy-free payload bytes (decodes to a
        // different valid frame) or structure (fails closed / waits
        // for more). All acceptable; crashing or over-reading is not.
        if (!frame.has_value() && !reader.failed()) {
            EXPECT_GT(reader.buffered(), 0u);
        }
    }
}

} // namespace
} // namespace anytime::net
