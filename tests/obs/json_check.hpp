/**
 * @file
 * Minimal recursive-descent JSON well-formedness check (RFC 8259
 * grammar, no semantics) shared by the observability test files. A
 * real parser dependency would be overkill: the tests only need to
 * assert "this export is syntactically valid JSON" and to pull the
 * numbers following a given key for ordering checks.
 */

#ifndef ANYTIME_TESTS_OBS_JSON_CHECK_HPP
#define ANYTIME_TESTS_OBS_JSON_CHECK_HPP

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

namespace anytime::testjson {

inline bool parseValue(const std::string &s, std::size_t &pos);

inline void
skipWs(const std::string &s, std::size_t &pos)
{
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])))
        ++pos;
}

inline bool
parseLiteral(const std::string &s, std::size_t &pos, const char *word)
{
    for (const char *c = word; *c; ++c) {
        if (pos >= s.size() || s[pos] != *c)
            return false;
        ++pos;
    }
    return true;
}

inline bool
parseString(const std::string &s, std::size_t &pos)
{
    if (pos >= s.size() || s[pos] != '"')
        return false;
    ++pos;
    while (pos < s.size()) {
        const char c = s[pos];
        if (c == '"') {
            ++pos;
            return true;
        }
        if (static_cast<unsigned char>(c) < 0x20)
            return false; // raw control character
        if (c == '\\') {
            ++pos;
            if (pos >= s.size())
                return false;
            const char esc = s[pos];
            if (esc == 'u') {
                for (int i = 0; i < 4; ++i) {
                    ++pos;
                    if (pos >= s.size() ||
                        !std::isxdigit(
                            static_cast<unsigned char>(s[pos])))
                        return false;
                }
            } else if (std::string("\"\\/bfnrt").find(esc) ==
                       std::string::npos) {
                return false;
            }
        }
        ++pos;
    }
    return false; // unterminated
}

inline bool
parseNumber(const std::string &s, std::size_t &pos)
{
    const std::size_t start = pos;
    if (pos < s.size() && s[pos] == '-')
        ++pos;
    if (pos >= s.size() ||
        !std::isdigit(static_cast<unsigned char>(s[pos])))
        return false;
    if (s[pos] == '0') {
        ++pos; // no leading zeros
    } else {
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            ++pos;
    }
    if (pos < s.size() && s[pos] == '.') {
        ++pos;
        if (pos >= s.size() ||
            !std::isdigit(static_cast<unsigned char>(s[pos])))
            return false;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            ++pos;
    }
    if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
        ++pos;
        if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos >= s.size() ||
            !std::isdigit(static_cast<unsigned char>(s[pos])))
            return false;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            ++pos;
    }
    return pos > start;
}

inline bool
parseObject(const std::string &s, std::size_t &pos)
{
    ++pos; // consume '{'
    skipWs(s, pos);
    if (pos < s.size() && s[pos] == '}') {
        ++pos;
        return true;
    }
    while (true) {
        skipWs(s, pos);
        if (!parseString(s, pos))
            return false;
        skipWs(s, pos);
        if (pos >= s.size() || s[pos] != ':')
            return false;
        ++pos;
        if (!parseValue(s, pos))
            return false;
        skipWs(s, pos);
        if (pos >= s.size())
            return false;
        if (s[pos] == '}') {
            ++pos;
            return true;
        }
        if (s[pos] != ',')
            return false;
        ++pos;
    }
}

inline bool
parseArray(const std::string &s, std::size_t &pos)
{
    ++pos; // consume '['
    skipWs(s, pos);
    if (pos < s.size() && s[pos] == ']') {
        ++pos;
        return true;
    }
    while (true) {
        if (!parseValue(s, pos))
            return false;
        skipWs(s, pos);
        if (pos >= s.size())
            return false;
        if (s[pos] == ']') {
            ++pos;
            return true;
        }
        if (s[pos] != ',')
            return false;
        ++pos;
    }
}

inline bool
parseValue(const std::string &s, std::size_t &pos)
{
    skipWs(s, pos);
    if (pos >= s.size())
        return false;
    switch (s[pos]) {
      case '{':
        return parseObject(s, pos);
      case '[':
        return parseArray(s, pos);
      case '"':
        return parseString(s, pos);
      case 't':
        return parseLiteral(s, pos, "true");
      case 'f':
        return parseLiteral(s, pos, "false");
      case 'n':
        return parseLiteral(s, pos, "null");
      default:
        return parseNumber(s, pos);
    }
}

inline bool
isValidJson(const std::string &text)
{
    std::size_t pos = 0;
    if (!parseValue(text, pos))
        return false;
    skipWs(text, pos);
    return pos == text.size();
}

/** All numbers following occurrences of `"key":`, in document order. */
inline std::vector<double>
numbersAfterKey(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    std::vector<double> values;
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
        pos += needle.size();
        values.push_back(std::strtod(text.c_str() + pos, nullptr));
    }
    return values;
}

} // namespace anytime::testjson

#endif // ANYTIME_TESTS_OBS_JSON_CHECK_HPP
