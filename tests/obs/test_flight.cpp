/**
 * @file
 * Flight-recorder tests: anomaly triggers must become bounded,
 * self-describing JSON artifacts on disk — and must cost nothing while
 * the recorder is disarmed. shutdownFlightRecorder() flushes the
 * writer queue before joining, so the tests never need to poll.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json_check.hpp"
#include "obs/flight.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace anytime::obs {
namespace {

namespace fs = std::filesystem;

class FlightTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        directory = (fs::temp_directory_path() /
                     ("anytime_flight_test_" +
                      std::string(::testing::UnitTest::GetInstance()
                                      ->current_test_info()
                                      ->name())))
                        .string();
        fs::remove_all(directory);
        fs::create_directories(directory);
        setTracingEnabled(false);
        clearTrace();
    }

    void
    TearDown() override
    {
        shutdownFlightRecorder();
        setFlightTimelineSource(nullptr);
        fs::remove_all(directory);
    }

    std::vector<std::string>
    artifactPaths() const
    {
        std::vector<std::string> paths;
        for (const auto &entry : fs::directory_iterator(directory))
            paths.push_back(entry.path().string());
        return paths;
    }

    static std::string
    slurp(const std::string &path)
    {
        std::ifstream in(path);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    }

    std::string directory;
};

TEST_F(FlightTest, DisabledTriggerIsANoOp)
{
    shutdownFlightRecorder();
    EXPECT_FALSE(flightRecorderEnabled());
    const std::uint64_t before = flightArtifactsWritten();
    flightRecorderTrigger("deadline_miss", 1, 0x1);
    EXPECT_EQ(flightArtifactsWritten(), before);
}

TEST_F(FlightTest, TriggerWritesSelfDescribingArtifact)
{
    // A real timeline behind the source, as the service wires it.
    TimelineStore store;
    store.begin(42, 0xdeadull, "pipe", 0.25);
    TimelinePoint point;
    point.tSeconds = 0.010;
    point.quality = 0.8;
    point.version = 1;
    point.stage = "count";
    store.recordVersion(42, point);
    setFlightTimelineSource([&store](std::uint64_t id) {
        const auto snap = store.snapshot(id);
        return snap ? TimelineStore::toJson(*snap) : std::string();
    });
    configureFlightRecorder({.directory = directory, .maxArtifacts = 4});
    ASSERT_TRUE(flightRecorderEnabled());

    flightRecorderTrigger("deadline_miss", 42, 0xdeadull);
    shutdownFlightRecorder(); // flushes the queue

    const auto paths = artifactPaths();
    ASSERT_EQ(paths.size(), 1u);
    const std::string artifact = slurp(paths.front());
    EXPECT_TRUE(testjson::isValidJson(artifact)) << artifact;
    EXPECT_NE(artifact.find("\"trigger\":\"deadline_miss\""),
              std::string::npos);
    EXPECT_NE(artifact.find("\"request_id\":42"), std::string::npos);
    EXPECT_NE(artifact.find("\"trace_id\":\"000000000000dead\""),
              std::string::npos);
    // The timeline snapshot rode along...
    EXPECT_NE(artifact.find("\"stage\":\"count\""), std::string::npos);
    // ...and so did the (empty but well-formed) trace dump.
    EXPECT_NE(artifact.find("\"traceEvents\""), std::string::npos);
}

TEST_F(FlightTest, UnknownRequestGetsNullTimeline)
{
    configureFlightRecorder({.directory = directory, .maxArtifacts = 4});
    flightRecorderTrigger("watchdog_expel", 0, 0);
    shutdownFlightRecorder();

    const auto paths = artifactPaths();
    ASSERT_EQ(paths.size(), 1u);
    const std::string artifact = slurp(paths.front());
    EXPECT_TRUE(testjson::isValidJson(artifact)) << artifact;
    EXPECT_NE(artifact.find("\"timeline\":null"), std::string::npos);
}

TEST_F(FlightTest, ArtifactsAreBoundedByRoundRobinSlots)
{
    configureFlightRecorder({.directory = directory, .maxArtifacts = 2});
    for (int i = 0; i < 5; ++i)
        flightRecorderTrigger("circuit_open",
                              static_cast<std::uint64_t>(i), 0);
    shutdownFlightRecorder();

    const auto paths = artifactPaths();
    EXPECT_LE(paths.size(), 2u);
    EXPECT_GE(paths.size(), 1u);
    for (const std::string &path : paths)
        EXPECT_TRUE(testjson::isValidJson(slurp(path))) << path;
}

} // namespace
} // namespace anytime::obs
