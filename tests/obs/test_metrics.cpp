/**
 * @file
 * Metrics registry and log-bucketed histogram tests: counter/gauge
 * semantics, idempotent registration, percentile edge cases (p=0,
 * p=100, single sample stay exact), and a golden-format check of the
 * Prometheus text exposition.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace anytime::obs {
namespace {

TEST(Metrics, CounterAccumulatesAndRegistrationIsIdempotent)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("reqs_total", "Requests.");
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);
    // Same name resolves to the same metric object.
    EXPECT_EQ(&registry.counter("reqs_total", "ignored"), &c);
}

TEST(Metrics, GaugeSetsAndAdds)
{
    MetricsRegistry registry;
    Gauge &g = registry.gauge("depth", "Queue depth.");
    g.set(3.0);
    g.add(2.5);
    g.add(-1.5);
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(Metrics, KindMismatchIsFatal)
{
    MetricsRegistry registry;
    registry.counter("clash", "A counter.");
    EXPECT_THROW(registry.gauge("clash", "Now a gauge?"), FatalError);
    EXPECT_THROW(registry.histogram("clash", "Now a histogram?"),
                 FatalError);
}

TEST(Metrics, InvalidPrometheusNamesAreFatal)
{
    MetricsRegistry registry;
#ifndef NDEBUG
    // Debug builds treat an illegal name as the bug it is.
    EXPECT_THROW(registry.counter("", "empty"), FatalError);
    EXPECT_THROW(registry.counter("has space", "space"), FatalError);
    EXPECT_THROW(registry.counter("1leading_digit", "digit"),
                 FatalError);
    EXPECT_THROW(registry.counter("dash-ed", "dash"), FatalError);
#else
    // Release builds sanitize and keep serving; the coerced name is
    // what shows up in the exposition.
    registry.counter("has space", "space").add();
    registry.counter("dash-ed", "dash").add();
    const std::string text = registry.prometheusText();
    EXPECT_NE(text.find("has_space 1"), std::string::npos);
    EXPECT_NE(text.find("dash_ed 1"), std::string::npos);
    EXPECT_EQ(text.find("has space"), std::string::npos);
#endif
    // Legal names: leading underscore/colon, embedded colons.
    registry.counter("_ok", "ok");
    registry.counter("ns:sub:metric_total", "ok");
}

TEST(Metrics, SanitizeMetricNameCoercesToLegalForm)
{
    EXPECT_EQ(sanitizeMetricName(""), "_");
    EXPECT_EQ(sanitizeMetricName("1abc"), "_1abc");
    EXPECT_EQ(sanitizeMetricName("a b-c.d"), "a_b_c_d");
    EXPECT_EQ(sanitizeMetricName("ns:ok_total"), "ns:ok_total");
}

TEST(Metrics, LabelValuesEscapePrometheusSpecials)
{
    EXPECT_EQ(prometheusEscapeLabel("plain"), "plain");
    EXPECT_EQ(prometheusEscapeLabel("a\\b"), "a\\\\b");
    EXPECT_EQ(prometheusEscapeLabel("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(prometheusEscapeLabel("line\nbreak"), "line\\nbreak");
}

TEST(Histogram, SingleSampleAnswersEveryPercentileExactly)
{
    LogHistogram h;
    h.observe(0.42);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.42);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.42);
    EXPECT_DOUBLE_EQ(h.percentile(100), 0.42);
    EXPECT_DOUBLE_EQ(h.min(), 0.42);
    EXPECT_DOUBLE_EQ(h.max(), 0.42);
    EXPECT_DOUBLE_EQ(h.mean(), 0.42);
}

TEST(Histogram, ExtremePercentilesReturnExactMinAndMax)
{
    LogHistogram h;
    const std::vector<double> samples = {0.0031, 0.017, 0.0009, 0.29,
                                         0.072,  0.0031};
    for (const double s : samples)
        h.observe(s);
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0009);
    EXPECT_DOUBLE_EQ(h.percentile(100), 0.29);
    EXPECT_DOUBLE_EQ(h.min(), 0.0009);
    EXPECT_DOUBLE_EQ(h.max(), 0.29);
}

TEST(Histogram, MidPercentilesAreWithinOneBucket)
{
    LogHistogram h; // growth 1.25 => <= ~12% relative error
    for (int i = 1; i <= 1000; ++i)
        h.observe(static_cast<double>(i) * 1e-3);
    const double p50 = h.percentile(50);
    EXPECT_GE(p50, 0.5 / 1.25);
    EXPECT_LE(p50, 0.5 * 1.25);
    const double p99 = h.percentile(99);
    EXPECT_GE(p99, 0.99 / 1.25);
    EXPECT_LE(p99, 1.0); // clamped into [min, max]
    EXPECT_GE(h.percentile(95), p50);
}

TEST(Histogram, EmptyAndOutOfRangeEdges)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 0.0);
    EXPECT_THROW(h.percentile(-0.1), FatalError);
    EXPECT_THROW(h.percentile(100.1), FatalError);
    // NaN samples are ignored; negative samples clamp to zero.
    h.observe(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.count(), 0u);
    h.observe(-5.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(Histogram, ConcurrentObserversLoseNoSamples)
{
    LogHistogram h;
    constexpr unsigned kThreads = 4;
    constexpr unsigned kPerThread = 10000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h] {
            for (unsigned i = 0; i < kPerThread; ++i)
                h.observe(1e-4 * static_cast<double>(i + 1));
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(h.count(), kThreads * kPerThread);
    EXPECT_DOUBLE_EQ(h.min(), 1e-4);
    EXPECT_DOUBLE_EQ(h.max(), 1.0);
}

TEST(Metrics, PrometheusExpositionMatchesGolden)
{
    MetricsRegistry registry;
    registry.counter("anytime_requests_total", "Requests observed.")
        .add(3);
    registry.gauge("anytime_queue_depth", "Current depth.").set(2.5);
    // Deterministic layout: bounds 0.001, 0.01, 0.1, +Inf.
    LogHistogram &h = registry.histogram(
        "anytime_latency_seconds", "Latency.",
        {.firstBound = 0.001, .growth = 10.0, .buckets = 4});
    h.observe(0.0005);
    h.observe(0.005);
    h.observe(0.05);
    h.observe(5.0);

    std::ostringstream out;
    registry.writePrometheus(out);
    const std::string expected =
        "# HELP anytime_latency_seconds Latency.\n"
        "# TYPE anytime_latency_seconds histogram\n"
        "anytime_latency_seconds_bucket{le=\"0.001\"} 1\n"
        "anytime_latency_seconds_bucket{le=\"0.01\"} 2\n"
        "anytime_latency_seconds_bucket{le=\"0.1\"} 3\n"
        "anytime_latency_seconds_bucket{le=\"+Inf\"} 4\n"
        "anytime_latency_seconds_sum 5.0555\n"
        "anytime_latency_seconds_count 4\n"
        "# HELP anytime_queue_depth Current depth.\n"
        "# TYPE anytime_queue_depth gauge\n"
        "anytime_queue_depth 2.5\n"
        "# HELP anytime_requests_total Requests observed.\n"
        "# TYPE anytime_requests_total counter\n"
        "anytime_requests_total 3\n";
    EXPECT_EQ(out.str(), expected);
}

TEST(Metrics, PrometheusExemplarRendersOnCoveringBucket)
{
    MetricsRegistry registry;
    LogHistogram &h = registry.histogram(
        "anytime_latency_seconds", "Latency.",
        {.firstBound = 0.001, .growth = 10.0, .buckets = 4});
    h.observe(0.0005);
    h.observeWithExemplar(0.005, 0xabcdef0123456789ull);

    std::ostringstream out;
    registry.writePrometheus(out);
    const std::string expected =
        "# HELP anytime_latency_seconds Latency.\n"
        "# TYPE anytime_latency_seconds histogram\n"
        "anytime_latency_seconds_bucket{le=\"0.001\"} 1\n"
        "anytime_latency_seconds_bucket{le=\"0.01\"} 2"
        " # {trace_id=\"abcdef0123456789\"} 0.005\n"
        "anytime_latency_seconds_bucket{le=\"0.1\"} 2\n"
        "anytime_latency_seconds_bucket{le=\"+Inf\"} 2\n"
        "anytime_latency_seconds_sum 0.0055\n"
        "anytime_latency_seconds_count 2\n";
    EXPECT_EQ(out.str(), expected);
}

TEST(Metrics, SnapshotReportsHistogramStatistics)
{
    MetricsRegistry registry;
    registry.counter("b_counter", "B.").add(7);
    LogHistogram &h = registry.histogram("a_histogram", "A.");
    h.observe(0.010);
    h.observe(0.020);
    h.observe(0.030);

    const std::vector<MetricSnapshot> rows = registry.snapshot();
    ASSERT_EQ(rows.size(), 2u);
    // Sorted by name.
    EXPECT_EQ(rows[0].name, "a_histogram");
    EXPECT_EQ(rows[0].kind, MetricKind::histogram);
    EXPECT_EQ(rows[0].count, 3u);
    EXPECT_DOUBLE_EQ(rows[0].min, 0.010);
    EXPECT_DOUBLE_EQ(rows[0].max, 0.030);
    EXPECT_NEAR(rows[0].sum, 0.060, 1e-12);
    EXPECT_GT(rows[0].p95, rows[0].p50 * 0.99);
    EXPECT_EQ(rows[1].name, "b_counter");
    EXPECT_EQ(rows[1].kind, MetricKind::counter);
    EXPECT_DOUBLE_EQ(rows[1].value, 7.0);
}

TEST(Metrics, PrometheusNumberFormatting)
{
    EXPECT_EQ(prometheusNumber(0.0), "0");
    EXPECT_EQ(prometheusNumber(42.0), "42");
    EXPECT_EQ(prometheusNumber(-3.0), "-3");
    EXPECT_EQ(prometheusNumber(2.5), "2.5");
    EXPECT_EQ(prometheusNumber(
                  std::numeric_limits<double>::infinity()),
              "+Inf");
    EXPECT_EQ(prometheusNumber(
                  -std::numeric_limits<double>::infinity()),
              "-Inf");
    EXPECT_EQ(prometheusNumber(
                  std::numeric_limits<double>::quiet_NaN()),
              "NaN");
}

} // namespace
} // namespace anytime::obs
