/**
 * @file
 * TimelineStore tests: the quality staircase must survive ring
 * overflow with its derived stats intact, snapshots must come back in
 * a stable order, and the JSON export must stay machine-parseable —
 * /requestz and the flight recorder both serve it verbatim.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "json_check.hpp"
#include "obs/timeline.hpp"

namespace anytime::obs {
namespace {

TimelinePoint
point(double t, double quality, std::uint64_t version,
      const std::string &stage = "stage")
{
    TimelinePoint p;
    p.tSeconds = t;
    p.quality = quality;
    p.version = version;
    p.bytes = version * 100;
    p.stage = stage;
    p.workers = 2;
    return p;
}

TEST(Timeline, FinishReportsQualityCrossingTimes)
{
    TimelineStore store;
    store.begin(1, 0xabcull, "pipe", 0.5);
    store.recordVersion(1, point(0.010, 0.30, 1));
    store.recordVersion(1, point(0.020, 0.60, 2));
    store.recordVersion(1, point(0.030, 0.95, 3));
    store.recordVersion(1, point(0.040, 1.00, 4));

    const auto stats = store.finish(1, "complete", false, 0.045, 1.0);
    ASSERT_TRUE(stats.has_value());
    EXPECT_DOUBLE_EQ(stats->finalQuality, 1.0);
    EXPECT_DOUBLE_EQ(stats->timeToQ50, 0.020);
    EXPECT_DOUBLE_EQ(stats->timeToQ90, 0.030);
    EXPECT_DOUBLE_EQ(stats->timeToQ99, 0.040);
}

TEST(Timeline, UncrossedThresholdsStayNaN)
{
    TimelineStore store;
    store.begin(1, 0, "pipe", 0.5);
    store.recordVersion(1, point(0.010, 0.55, 1));
    const auto stats = store.finish(1, "deadline", true, 0.5, 0.55);
    ASSERT_TRUE(stats.has_value());
    EXPECT_DOUBLE_EQ(stats->timeToQ50, 0.010);
    EXPECT_TRUE(std::isnan(stats->timeToQ90));
    EXPECT_TRUE(std::isnan(stats->timeToQ99));
}

TEST(Timeline, StageGainsAttributeQualityDeltas)
{
    TimelineStore store;
    store.begin(1, 0, "pipe", 0.5);
    store.recordVersion(1, point(0.010, 0.20, 1, "count"));
    store.recordVersion(1, point(0.020, 0.50, 2, "merge"));
    store.recordVersion(1, point(0.030, 0.90, 3, "count"));
    store.finish(1, "complete", false, 0.035, 0.9);

    const auto snap = store.snapshot(1);
    ASSERT_TRUE(snap.has_value());
    ASSERT_EQ(snap->stageGains.size(), 2u);
    double total = 0.0;
    for (const StageGain &gain : snap->stageGains) {
        total += gain.qualityGain;
        if (gain.stage == "count") {
            EXPECT_EQ(gain.versions, 2u);
            EXPECT_NEAR(gain.qualityGain, 0.60, 1e-12);
        } else {
            EXPECT_EQ(gain.stage, "merge");
            EXPECT_EQ(gain.versions, 1u);
            EXPECT_NEAR(gain.qualityGain, 0.30, 1e-12);
        }
    }
    EXPECT_NEAR(total, 0.90, 1e-12);
}

TEST(Timeline, RingOverflowKeepsNewestPointsInOrder)
{
    TimelineStore store({.pointCapacity = 4, .finishedCapacity = 4});
    store.begin(1, 0, "pipe", 1.0);
    for (int i = 1; i <= 10; ++i)
        store.recordVersion(
            1, point(0.001 * i, 0.1 * i > 1.0 ? 1.0 : 0.1 * i,
                     static_cast<std::uint64_t>(i)));

    const auto snap = store.snapshot(1);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->pointsDropped, 6u);
    ASSERT_EQ(snap->points.size(), 4u);
    // Tail of the staircase, oldest retained first.
    for (std::size_t i = 0; i < snap->points.size(); ++i)
        EXPECT_EQ(snap->points[i].version, 7 + i);

    // Derived stats were computed as points landed, so the overflow
    // cannot lose the q50 crossing even though its point is gone.
    const auto stats = store.finish(1, "complete", false, 0.011, 1.0);
    ASSERT_TRUE(stats.has_value());
    EXPECT_DOUBLE_EQ(stats->timeToQ50, 0.005);
}

TEST(Timeline, SnapshotAllOrdersInflightThenNewestFinished)
{
    TimelineStore store;
    store.begin(1, 0, "a", 0.5);
    store.begin(2, 0, "b", 0.5);
    store.begin(3, 0, "c", 0.5);
    store.finish(1, "complete", false, 0.01, 1.0);
    store.finish(2, "deadline", true, 0.02, 0.5);

    const auto all = store.snapshotAll();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0].requestId, 3u);
    EXPECT_FALSE(all[0].finished);
    EXPECT_EQ(all[0].status, "running");
    // Newest-finished first.
    EXPECT_EQ(all[1].requestId, 2u);
    EXPECT_TRUE(all[1].degraded);
    EXPECT_EQ(all[2].requestId, 1u);
    EXPECT_EQ(all[2].status, "complete");
}

TEST(Timeline, FinishedRingEvictsOldest)
{
    TimelineStore store({.pointCapacity = 8, .finishedCapacity = 2});
    for (std::uint64_t id = 1; id <= 3; ++id) {
        store.begin(id, 0, "pipe", 0.5);
        store.finish(id, "complete", false, 0.01, 1.0);
    }
    const auto all = store.snapshotAll();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].requestId, 3u);
    EXPECT_EQ(all[1].requestId, 2u);
    EXPECT_FALSE(store.snapshot(1).has_value());
}

TEST(Timeline, UnknownRequestIdsAreIgnored)
{
    TimelineStore store;
    store.recordVersion(99, point(0.001, 0.5, 1));
    store.recordBuildAttempt(99, 2);
    EXPECT_FALSE(store.finish(99, "complete", false, 0.01, 1.0)
                     .has_value());
    EXPECT_FALSE(store.snapshot(99).has_value());
    EXPECT_TRUE(store.snapshotAll().empty());
}

TEST(Timeline, ToJsonIsValidAndCarriesTheStaircase)
{
    TimelineStore store;
    store.begin(7, 0x1234abcdull, "needs \"escaping\"\n", 0.25);
    store.recordBuildAttempt(7, 2);
    store.recordVersion(7, point(0.010, 0.40, 1, "count"));
    store.recordVersion(7, point(0.020, 0.95, 2, "merge"));
    store.finish(7, "complete", false, 0.021, 0.95);

    const std::string json = TimelineStore::toJson(store.snapshotAll());
    EXPECT_TRUE(testjson::isValidJson(json)) << json;
    EXPECT_NE(json.find("\"request_id\":7"), std::string::npos);
    EXPECT_NE(json.find("\"trace_id\":\"000000001234abcd\""),
              std::string::npos);
    EXPECT_NE(json.find("\"build_attempts\":2"), std::string::npos);
    EXPECT_NE(json.find("\"stage\":\"merge\""), std::string::npos);
    // The staircase is non-decreasing in both t and quality.
    const auto qualities = testjson::numbersAfterKey(json, "quality");
    ASSERT_EQ(qualities.size(), 2u);
    EXPECT_LE(qualities[0], qualities[1]);
}

TEST(Timeline, NaNQualityExportsAsNull)
{
    TimelineStore store;
    store.begin(1, 0, "pipe", 0.5);
    TimelinePoint p = point(0.010, 0.0, 1);
    p.quality = std::numeric_limits<double>::quiet_NaN();
    store.recordVersion(1, p);
    const std::string json = TimelineStore::toJson(store.snapshotAll());
    EXPECT_TRUE(testjson::isValidJson(json)) << json;
    EXPECT_EQ(json.find("nan"), std::string::npos) << json;
    EXPECT_EQ(json.find("NaN"), std::string::npos) << json;
}

} // namespace
} // namespace anytime::obs
