/**
 * @file
 * Trace collector tests: multi-threaded emission must produce
 * well-formed, chronologically ordered Chrome trace-event JSON; rings
 * must stay bounded (overwriting, not growing, when full); and the
 * disabled path must record nothing.
 *
 * JSON well-formedness is checked with a small recursive-descent
 * validator rather than eyeballing substrings, so a malformed escape,
 * a trailing comma, or a bare NaN in the output fails the suite.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace anytime::obs {
namespace {

// --- minimal JSON validator (RFC 8259 grammar, no semantics) --------

bool parseValue(const std::string &s, std::size_t &pos);

void
skipWs(const std::string &s, std::size_t &pos)
{
    while (pos < s.size() && std::isspace(
                                 static_cast<unsigned char>(s[pos])))
        ++pos;
}

bool
parseLiteral(const std::string &s, std::size_t &pos, const char *word)
{
    for (const char *c = word; *c; ++c) {
        if (pos >= s.size() || s[pos] != *c)
            return false;
        ++pos;
    }
    return true;
}

bool
parseString(const std::string &s, std::size_t &pos)
{
    if (pos >= s.size() || s[pos] != '"')
        return false;
    ++pos;
    while (pos < s.size()) {
        const char c = s[pos];
        if (c == '"') {
            ++pos;
            return true;
        }
        if (static_cast<unsigned char>(c) < 0x20)
            return false; // raw control character
        if (c == '\\') {
            ++pos;
            if (pos >= s.size())
                return false;
            const char esc = s[pos];
            if (esc == 'u') {
                for (int i = 0; i < 4; ++i) {
                    ++pos;
                    if (pos >= s.size() ||
                        !std::isxdigit(
                            static_cast<unsigned char>(s[pos])))
                        return false;
                }
            } else if (std::string("\"\\/bfnrt").find(esc) ==
                       std::string::npos) {
                return false;
            }
        }
        ++pos;
    }
    return false; // unterminated
}

bool
parseNumber(const std::string &s, std::size_t &pos)
{
    const std::size_t start = pos;
    if (pos < s.size() && s[pos] == '-')
        ++pos;
    if (pos >= s.size() ||
        !std::isdigit(static_cast<unsigned char>(s[pos])))
        return false;
    if (s[pos] == '0') {
        ++pos; // no leading zeros
    } else {
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            ++pos;
    }
    if (pos < s.size() && s[pos] == '.') {
        ++pos;
        if (pos >= s.size() ||
            !std::isdigit(static_cast<unsigned char>(s[pos])))
            return false;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            ++pos;
    }
    if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
        ++pos;
        if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos >= s.size() ||
            !std::isdigit(static_cast<unsigned char>(s[pos])))
            return false;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            ++pos;
    }
    return pos > start;
}

bool
parseObject(const std::string &s, std::size_t &pos)
{
    ++pos; // consume '{'
    skipWs(s, pos);
    if (pos < s.size() && s[pos] == '}') {
        ++pos;
        return true;
    }
    while (true) {
        skipWs(s, pos);
        if (!parseString(s, pos))
            return false;
        skipWs(s, pos);
        if (pos >= s.size() || s[pos] != ':')
            return false;
        ++pos;
        if (!parseValue(s, pos))
            return false;
        skipWs(s, pos);
        if (pos >= s.size())
            return false;
        if (s[pos] == '}') {
            ++pos;
            return true;
        }
        if (s[pos] != ',')
            return false;
        ++pos;
    }
}

bool
parseArray(const std::string &s, std::size_t &pos)
{
    ++pos; // consume '['
    skipWs(s, pos);
    if (pos < s.size() && s[pos] == ']') {
        ++pos;
        return true;
    }
    while (true) {
        if (!parseValue(s, pos))
            return false;
        skipWs(s, pos);
        if (pos >= s.size())
            return false;
        if (s[pos] == ']') {
            ++pos;
            return true;
        }
        if (s[pos] != ',')
            return false;
        ++pos;
    }
}

bool
parseValue(const std::string &s, std::size_t &pos)
{
    skipWs(s, pos);
    if (pos >= s.size())
        return false;
    switch (s[pos]) {
      case '{':
        return parseObject(s, pos);
      case '[':
        return parseArray(s, pos);
      case '"':
        return parseString(s, pos);
      case 't':
        return parseLiteral(s, pos, "true");
      case 'f':
        return parseLiteral(s, pos, "false");
      case 'n':
        return parseLiteral(s, pos, "null");
      default:
        return parseNumber(s, pos);
    }
}

bool
isValidJson(const std::string &text)
{
    std::size_t pos = 0;
    if (!parseValue(text, pos))
        return false;
    skipWs(text, pos);
    return pos == text.size();
}

/** All numbers following occurrences of `"key":`, in document order. */
std::vector<double>
numbersAfterKey(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    std::vector<double> values;
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
        pos += needle.size();
        values.push_back(std::strtod(text.c_str() + pos, nullptr));
    }
    return values;
}

std::string
exportTrace()
{
    std::ostringstream out;
    writeChromeTrace(out);
    return out.str();
}

/** Reset collector state and fail fast if a prior test leaked it on. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setTracingEnabled(false);
        clearTrace();
    }

    void
    TearDown() override
    {
        setTracingEnabled(false);
        clearTrace();
    }
};

TEST_F(TraceTest, DisabledEmittersRecordNothing)
{
    ASSERT_FALSE(tracingEnabled());
    traceInstant("quiet", "test");
    traceCounter("quiet.count", 7.0);
    traceAsyncBegin("quiet.async", "test", 1);
    traceAsyncEnd("quiet.async", "test", 1);
    {
        TraceSpan span("quiet.span", "test");
    }
    EXPECT_EQ(retainedRecords(), 0u);
    EXPECT_EQ(droppedRecords(), 0u);

    const std::string json = exportTrace();
    EXPECT_TRUE(isValidJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// Everything below exercises actual recording, which only exists when
// the emitters are compiled in (the -DANYTIME_TRACE=OFF build checks
// the stub path through DisabledEmittersRecordNothing above).
#if ANYTIME_TRACE_COMPILED_IN

TEST_F(TraceTest, MultiThreadedEmissionYieldsWellFormedOrderedJson)
{
    setTracingEnabled(true);
    constexpr unsigned kThreads = 4;
    constexpr unsigned kPerThread = 200;

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (unsigned i = 0; i < kPerThread; ++i) {
                const std::uint64_t id = t * kPerThread + i;
                traceAsyncBegin("request", "test", id,
                                {"thread", static_cast<double>(t)});
                {
                    TraceSpan span("work", "test",
                                   {"i", static_cast<double>(i)});
                    span.arg(1, "t", static_cast<double>(t));
                }
                traceCounter("progress", static_cast<double>(i));
                traceAsyncEnd("request", "test", id);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    setTracingEnabled(false);

    // 4 events per iteration, well below the per-thread ring capacity.
    EXPECT_EQ(retainedRecords(), kThreads * kPerThread * 4u);
    EXPECT_EQ(droppedRecords(), 0u);

    const std::string json = exportTrace();
    ASSERT_TRUE(isValidJson(json)) << "invalid JSON ("
                                   << json.size() << " bytes)";
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);

    // Export merges the per-thread rings into one chronological stream.
    const std::vector<double> stamps = numbersAfterKey(json, "ts");
    ASSERT_EQ(stamps.size(), kThreads * kPerThread * 4u);
    for (std::size_t i = 1; i < stamps.size(); ++i)
        ASSERT_GE(stamps[i], stamps[i - 1]) << "out of order at " << i;
}

TEST_F(TraceTest, FullRingOverwritesOldestAndCountsDropped)
{
    setTracingEnabled(true);
    const std::size_t capacity = traceCapacityPerThread();
    const std::size_t excess = 100;
    for (std::size_t i = 0; i < capacity + excess; ++i)
        traceInstant("tick", "test", {"i", static_cast<double>(i)});
    setTracingEnabled(false);

    EXPECT_EQ(retainedRecords(), capacity);
    EXPECT_EQ(droppedRecords(), excess);

    const std::string json = exportTrace();
    EXPECT_TRUE(isValidJson(json));
    // The survivors are the newest records, so the oldest surviving
    // argument value is exactly `excess`.
    const std::vector<double> args = numbersAfterKey(json, "i");
    ASSERT_EQ(args.size(), capacity);
    EXPECT_DOUBLE_EQ(args.front(), static_cast<double>(excess));
    EXPECT_DOUBLE_EQ(args.back(),
                     static_cast<double>(capacity + excess - 1));
}

TEST_F(TraceTest, SpanMeasuresElapsedTime)
{
    setTracingEnabled(true);
    {
        TraceSpan span("sleep", "test");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    setTracingEnabled(false);

    const std::string json = exportTrace();
    ASSERT_TRUE(isValidJson(json));
    const std::vector<double> durations = numbersAfterKey(json, "dur");
    ASSERT_EQ(durations.size(), 1u);
    EXPECT_GE(durations[0], 1000.0); // microseconds
}

TEST_F(TraceTest, NonFiniteArgumentsStayValidJson)
{
    setTracingEnabled(true);
    traceInstant("edge", "test",
                 {"nan", std::numeric_limits<double>::quiet_NaN()},
                 {"inf", std::numeric_limits<double>::infinity()});
    setTracingEnabled(false);

    // A bare `nan`/`inf` token would fail the validator; the collector
    // serializes non-finite argument values as JSON null instead.
    const std::string json = exportTrace();
    EXPECT_TRUE(isValidJson(json)) << json;
    EXPECT_NE(json.find("null"), std::string::npos);
}

TEST_F(TraceTest, EscapesQuotesAndBackslashesInNames)
{
    setTracingEnabled(true);
    const char *tricky = internName("a\"b\\c\n");
    traceInstant(tricky, "test");
    setTracingEnabled(false);
    const std::string json = exportTrace();
    EXPECT_TRUE(isValidJson(json)) << json;
}

TEST_F(TraceTest, InternedNamesAreStableAndDeduplicated)
{
    const char *first = internName(std::string("stage.alpha"));
    const char *second = internName(std::string("stage.alpha"));
    EXPECT_EQ(first, second);
    EXPECT_STREQ(first, "stage.alpha");
}

#endif // ANYTIME_TRACE_COMPILED_IN

} // namespace
} // namespace anytime::obs
