/**
 * @file
 * Tracer ring overflow under live network streaming: N concurrent
 * loopback clients stream real requests while their version callbacks
 * hammer the per-thread rings far past capacity. The collector must
 * drop oldest records (bounded memory, counted drops) and the Chrome
 * JSON export must remain well-formed and chronologically sorted —
 * a half-overwritten ring is exactly when a naive exporter would
 * emit garbage.
 */

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_check.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace anytime::obs {
namespace {

using namespace std::chrono_literals;

#if ANYTIME_TRACE_COMPILED_IN

class TraceNetOverflow : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setTracingEnabled(false);
        clearTrace();
        setTracingEnabled(true);
    }

    void
    TearDown() override
    {
        setTracingEnabled(false);
        clearTrace();
    }
};

TEST_F(TraceNetOverflow, ConcurrentStreamsOverflowButExportStaysSane)
{
    net::NetServerConfig config;
    config.catalog = std::make_shared<net::PipelineCatalog>();
    net::registerCounterPipeline(*config.catalog);
    obs::MetricsRegistry registry;
    config.metricsRegistry = &registry;
    config.service.workers = 2;
    config.coalesce = false; // N genuinely distinct live streams
    net::NetServer server(std::move(config));

    net::ClientOptions options;
    options.port = server.port();
    options.timeout = 10000ms;

    // Each client floods its own thread's ring from the version
    // callback — mid-stream, while the reactor and stage workers are
    // writing to theirs. A burst per version comfortably exceeds the
    // per-thread capacity over the stream's lifetime.
    const std::size_t burst = traceCapacityPerThread() / 2;
    constexpr int kClients = 4;
    std::vector<std::thread> clients;
    // Plain bool array, NOT vector<bool>: each client thread writes its
    // own element, and vector<bool>'s packed bits share a word.
    std::array<bool, kClients> ok{};
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            net::RequestFrame frame;
            frame.pipeline = "counter";
            frame.input = "24" + std::to_string(i) + ":500:4";
            frame.deadlineMicros = 10000000;
            const auto result = net::runRequest(
                options, frame, [&](const net::VersionFrame &) {
                    for (std::size_t n = 0; n < burst; ++n)
                        traceInstant("flood", "test",
                                     {"n", static_cast<double>(n)});
                    return true;
                });
            ok[static_cast<std::size_t>(i)] = result.ok;
        });
    }
    for (auto &thread : clients)
        thread.join();
    setTracingEnabled(false);

    for (int i = 0; i < kClients; ++i)
        EXPECT_TRUE(ok[static_cast<std::size_t>(i)]) << "client " << i;

    // The rings wrapped (records were dropped), yet memory stayed
    // bounded: no thread retains more than one ring's worth.
    EXPECT_GT(droppedRecords(), 0u);
    EXPECT_LE(retainedRecords(),
              static_cast<std::uint64_t>(kClients + 16) *
                  traceCapacityPerThread());

    std::ostringstream out;
    writeChromeTrace(out);
    const std::string json = out.str();
    EXPECT_TRUE(testjson::isValidJson(json));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

    // Chronologically sane: every event timestamp is non-decreasing
    // across the merged multi-thread export.
    const auto stamps = testjson::numbersAfterKey(json, "ts");
    ASSERT_GT(stamps.size(), 2u);
    for (std::size_t i = 1; i < stamps.size(); ++i)
        ASSERT_LE(stamps[i - 1], stamps[i]) << "event " << i;
}

#endif // ANYTIME_TRACE_COMPILED_IN

} // namespace
} // namespace anytime::obs
