/**
 * @file
 * Unit tests for the bit-manipulation primitives behind the tree
 * permutation.
 */

#include <gtest/gtest.h>

#include "support/bits.hpp"

namespace anytime {
namespace {

TEST(Bits, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(4));
    EXPECT_FALSE(isPow2(6));
    EXPECT_TRUE(isPow2(std::uint64_t(1) << 63));
    EXPECT_FALSE(isPow2((std::uint64_t(1) << 63) + 1));
}

TEST(Bits, Ilog2)
{
    EXPECT_EQ(ilog2(1), 0u);
    EXPECT_EQ(ilog2(2), 1u);
    EXPECT_EQ(ilog2(3), 1u);
    EXPECT_EQ(ilog2(4), 2u);
    EXPECT_EQ(ilog2(255), 7u);
    EXPECT_EQ(ilog2(256), 8u);
    EXPECT_EQ(ilog2(std::uint64_t(1) << 40), 40u);
}

TEST(Bits, NextPow2)
{
    EXPECT_EQ(nextPow2(0), 1u);
    EXPECT_EQ(nextPow2(1), 1u);
    EXPECT_EQ(nextPow2(2), 2u);
    EXPECT_EQ(nextPow2(3), 4u);
    EXPECT_EQ(nextPow2(1000), 1024u);
}

TEST(Bits, IndexBits)
{
    EXPECT_EQ(indexBits(1), 1u);
    EXPECT_EQ(indexBits(2), 1u);
    EXPECT_EQ(indexBits(3), 2u);
    EXPECT_EQ(indexBits(4), 2u);
    EXPECT_EQ(indexBits(5), 3u);
    EXPECT_EQ(indexBits(256), 8u);
    EXPECT_EQ(indexBits(257), 9u);
}

TEST(Bits, ReverseBitsKnownValues)
{
    // The paper's Figure 4: p: b3b2b1b0 -> b0b1b2b3 over 16 elements.
    EXPECT_EQ(reverseBits(0b0001, 4), 0b1000u);
    EXPECT_EQ(reverseBits(0b0010, 4), 0b0100u);
    EXPECT_EQ(reverseBits(0b0011, 4), 0b1100u);
    EXPECT_EQ(reverseBits(0b1000, 4), 0b0001u);
    EXPECT_EQ(reverseBits(0, 4), 0u);
    EXPECT_EQ(reverseBits(0b1111, 4), 0b1111u);
}

TEST(Bits, ReverseBitsInvolution)
{
    for (unsigned bits = 1; bits <= 12; ++bits) {
        for (std::uint64_t v = 0; v < (std::uint64_t(1) << bits);
             v += 7) {
            EXPECT_EQ(reverseBits(reverseBits(v, bits), bits), v)
                << "bits=" << bits << " v=" << v;
        }
    }
}

TEST(Bits, ReverseBitsDropsHighBits)
{
    EXPECT_EQ(reverseBits(0b110001, 4), 0b1000u);
}

TEST(Bits, ExtractEveryNth)
{
    // The paper's Figure 5: b5b4b3b2b1b0 deinterleaves to rows b5b3b1
    // and cols b4b2b0.
    const std::uint64_t v = 0b110100; // b5..b0 = 1,1,0,1,0,0
    EXPECT_EQ(extractEveryNth(v, 1, 2, 6), 0b100u); // b5 b3 b1
    EXPECT_EQ(extractEveryNth(v, 0, 2, 6), 0b110u); // b4 b2 b0
}

TEST(Bits, InterleaveRoundTrip)
{
    for (std::uint64_t a = 0; a < 16; ++a) {
        for (std::uint64_t b = 0; b < 16; ++b) {
            const std::uint64_t parts[2] = {a, b};
            const std::uint64_t combined = interleaveBits(parts, 2, 4);
            EXPECT_EQ(extractEveryNth(combined, 0, 2, 8), a);
            EXPECT_EQ(extractEveryNth(combined, 1, 2, 8), b);
        }
    }
}

} // namespace
} // namespace anytime
