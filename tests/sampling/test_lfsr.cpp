/**
 * @file
 * Tests for the LFSR engine and the pseudo-random permutation built on
 * it. Maximality of the tap polynomials is verified exhaustively for
 * small widths (the bijectivity of LfsrPermutation re-verifies it
 * indirectly for every width it uses).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sampling/lfsr.hpp"
#include "sampling/lfsr_permutation.hpp"
#include "support/error.hpp"

namespace anytime {
namespace {

TEST(LfsrEngine, RejectsBadWidths)
{
    EXPECT_THROW(LfsrEngine(1, 1), FatalError);
    EXPECT_THROW(LfsrEngine(33, 1), FatalError);
    EXPECT_NO_THROW(LfsrEngine(2, 1));
    EXPECT_NO_THROW(LfsrEngine(32, 1));
}

TEST(LfsrEngine, ZeroSeedIsCoerced)
{
    LfsrEngine lfsr(8, 0);
    EXPECT_NE(lfsr.state(), 0u);
}

TEST(LfsrEngine, StateStaysNonZeroAndInRange)
{
    LfsrEngine lfsr(5, 1);
    for (int i = 0; i < 100; ++i) {
        const std::uint32_t s = lfsr.step();
        EXPECT_NE(s, 0u);
        EXPECT_LT(s, 32u);
    }
}

/** Exhaustive maximal-period check per width. */
class LfsrPeriod : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LfsrPeriod, FullPeriodVisitsEveryNonZeroState)
{
    const unsigned width = GetParam();
    LfsrEngine lfsr(width, 1);
    const std::uint64_t period = lfsr.period();
    std::vector<bool> seen(period + 1, false);
    for (std::uint64_t i = 0; i < period; ++i) {
        const std::uint32_t s = lfsr.state();
        ASSERT_NE(s, 0u);
        ASSERT_LE(s, period);
        ASSERT_FALSE(seen[s]) << "width " << width
                              << " repeats state " << s << " at step "
                              << i << " (taps not maximal)";
        seen[s] = true;
        lfsr.step();
    }
    // And the cycle closes.
    EXPECT_EQ(lfsr.state(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrPeriod,
                         ::testing::Range(2u, 19u));

TEST(LfsrPermutation, SmallDomains)
{
    LfsrPermutation one(1);
    EXPECT_EQ(one.size(), 1u);
    EXPECT_EQ(one.map(0), 0u);

    LfsrPermutation two(2);
    EXPECT_EQ(two.size(), 2u);
    EXPECT_EQ(two.map(0), 0u);
    EXPECT_EQ(two.map(1), 1u);
}

TEST(LfsrPermutation, RejectsEmptyDomain)
{
    EXPECT_THROW(LfsrPermutation(0), FatalError);
}

TEST(LfsrPermutation, IndexZeroComesFirst)
{
    // The LFSR can never emit 0, so the permutation visits it first.
    LfsrPermutation perm(1000, 42);
    EXPECT_EQ(perm.map(0), 0u);
}

TEST(LfsrPermutation, SeedsRotateTheSequence)
{
    LfsrPermutation a(257, 1);
    LfsrPermutation b(257, 12345);
    bool differs = false;
    for (std::uint64_t i = 1; i < 20 && !differs; ++i)
        differs = (a.map(i) != b.map(i));
    EXPECT_TRUE(differs) << "different seeds gave identical sequences";
}

TEST(LfsrPermutation, SequenceLooksScattered)
{
    // Pseudo-randomness sanity: among the first 64 samples of a 4096
    // domain, consecutive samples should rarely be close in memory.
    LfsrPermutation perm(4096, 7);
    unsigned near = 0;
    for (std::uint64_t i = 1; i < 64; ++i) {
        const std::int64_t delta =
            static_cast<std::int64_t>(perm.map(i)) -
            static_cast<std::int64_t>(perm.map(i - 1));
        if (delta > -16 && delta < 16)
            ++near;
    }
    EXPECT_LT(near, 8u);
}

/** Property sweep: bijectivity across domain sizes. */
class LfsrBijectivity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LfsrBijectivity, Bijective)
{
    LfsrPermutation perm(GetParam(), 99);
    std::vector<bool> seen(perm.size(), false);
    for (std::uint64_t i = 0; i < perm.size(); ++i) {
        const std::uint64_t p = perm.map(i);
        ASSERT_LT(p, perm.size());
        ASSERT_FALSE(seen[p]);
        seen[p] = true;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LfsrBijectivity,
                         ::testing::Values<std::uint64_t>(
                             1, 2, 3, 4, 5, 7, 8, 9, 100, 255, 256, 257,
                             1000, 4095, 4096, 4097, 65536, 100000));

} // namespace
} // namespace anytime
