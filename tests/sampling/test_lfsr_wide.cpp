/**
 * @file
 * Spot checks for wide LFSRs (widths 19-32), whose full periods are too
 * long to sweep exhaustively in unit tests. A maximal LFSR never
 * revisits its seed state before the full period, so observing the seed
 * again within a 2^20-step prefix disproves maximality; we also verify
 * the state stays in range and the tap table is populated.
 */

#include <gtest/gtest.h>

#include "sampling/lfsr.hpp"

namespace anytime {
namespace {

class WideLfsr : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WideLfsr, NoEarlyCycleAndInRange)
{
    const unsigned width = GetParam();
    LfsrEngine lfsr(width, 1);
    const std::uint32_t seed = lfsr.state();
    const std::uint64_t limit =
        std::min<std::uint64_t>(lfsr.period(), std::uint64_t(1) << 20);
    const std::uint64_t bound = std::uint64_t(1) << width;
    for (std::uint64_t i = 1; i < limit; ++i) {
        const std::uint32_t s = lfsr.step();
        ASSERT_NE(s, 0u) << "width " << width << " hit lock-up";
        ASSERT_LT(static_cast<std::uint64_t>(s), bound);
        ASSERT_FALSE(s == seed && i + 1 < lfsr.period())
            << "width " << width << " cycled after " << i
            << " steps (non-maximal taps)";
    }
}

TEST_P(WideLfsr, TapsHaveTopBitSet)
{
    const unsigned width = GetParam();
    const std::uint32_t taps = LfsrEngine::tapsFor(width);
    EXPECT_NE(taps, 0u);
    EXPECT_TRUE((taps >> (width - 1)) & 1)
        << "taps must include the feedback term x^" << width;
    if (width < 32)
        EXPECT_EQ(taps >> width, 0u) << "taps beyond the register";
}

INSTANTIATE_TEST_SUITE_P(Widths, WideLfsr,
                         ::testing::Values(19u, 20u, 22u, 24u, 26u, 28u,
                                           30u, 31u, 32u));

} // namespace
} // namespace anytime
