/**
 * @file
 * Tests for multi-threaded sampling partitions (paper Section IV-C1):
 * the per-thread slices must tile the permutation sequence exactly.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sampling/lfsr_permutation.hpp"
#include "sampling/partition.hpp"
#include "sampling/tree_permutation.hpp"

namespace anytime {
namespace {

template <typename Part>
void
expectExactCover(const Permutation &perm, unsigned threads)
{
    std::vector<unsigned> visits(perm.size(), 0);
    std::uint64_t total = 0;
    for (unsigned t = 0; t < threads; ++t) {
        Part part(perm, threads, t);
        total += part.size();
        for (std::uint64_t k = 0; k < part.size(); ++k) {
            const std::uint64_t element = part.map(k);
            ASSERT_LT(element, perm.size());
            ++visits[element];
        }
    }
    EXPECT_EQ(total, perm.size());
    for (std::size_t i = 0; i < visits.size(); ++i)
        ASSERT_EQ(visits[i], 1u) << "element " << i;
}

TEST(CyclicPartition, CoversTreePermutationExactlyOnce)
{
    TreePermutation perm = TreePermutation::twoDim(8, 8);
    for (unsigned threads : {1u, 2u, 3u, 4u, 7u, 64u, 100u})
        expectExactCover<CyclicPartition>(perm, threads);
}

TEST(BlockPartition, CoversLfsrPermutationExactlyOnce)
{
    LfsrPermutation perm(1000, 3);
    for (unsigned threads : {1u, 2u, 3u, 9u, 999u, 1001u})
        expectExactCover<BlockPartition>(perm, threads);
}

TEST(CyclicPartition, OrdinalsInterleave)
{
    // Cyclic distribution: thread t visits ordinals t, t+T, t+2T...
    // so each thread contributes to every resolution level early.
    SequentialPermutation perm(12);
    CyclicPartition part(perm, 4, 1);
    EXPECT_EQ(part.size(), 3u);
    EXPECT_EQ(part.ordinal(0), 1u);
    EXPECT_EQ(part.ordinal(1), 5u);
    EXPECT_EQ(part.ordinal(2), 9u);
}

TEST(BlockPartition, ChunksAreContiguousAndBalanced)
{
    SequentialPermutation perm(10);
    BlockPartition first(perm, 3, 0);
    BlockPartition second(perm, 3, 1);
    BlockPartition third(perm, 3, 2);
    EXPECT_EQ(first.size(), 4u); // 10 = 4 + 3 + 3
    EXPECT_EQ(second.size(), 3u);
    EXPECT_EQ(third.size(), 3u);
    EXPECT_EQ(first.ordinal(0), 0u);
    EXPECT_EQ(second.ordinal(0), 4u);
    EXPECT_EQ(third.ordinal(0), 7u);
}

TEST(Partition, RejectsBadArguments)
{
    SequentialPermutation perm(10);
    EXPECT_THROW(CyclicPartition(perm, 0, 0), FatalError);
    EXPECT_THROW(CyclicPartition(perm, 2, 2), FatalError);
    EXPECT_THROW(BlockPartition(perm, 0, 0), FatalError);
    EXPECT_THROW(BlockPartition(perm, 3, 3), FatalError);
}

TEST(CyclicPartition, MoreThreadsThanElements)
{
    SequentialPermutation perm(2);
    CyclicPartition a(perm, 5, 0);
    CyclicPartition b(perm, 5, 1);
    CyclicPartition c(perm, 5, 4);
    EXPECT_EQ(a.size(), 1u);
    EXPECT_EQ(b.size(), 1u);
    EXPECT_EQ(c.size(), 0u);
}

TEST(CyclicPartition, EmptySliceMapPanics)
{
    // Regression: a thread whose slice is empty (threadId >= element
    // count) used to be able to call map() and read past the sequence;
    // now any out-of-slice ordinal is a panic, empty or not.
    SequentialPermutation perm(3);
    CyclicPartition empty(perm, 7, 5);
    EXPECT_EQ(empty.size(), 0u);
    EXPECT_THROW(empty.map(0), PanicError);
    CyclicPartition one(perm, 7, 2);
    EXPECT_EQ(one.size(), 1u);
    EXPECT_THROW(one.map(1), PanicError);
}

TEST(BlockPartition, EmptyChunkMapPanics)
{
    SequentialPermutation perm(3);
    BlockPartition empty(perm, 7, 6);
    EXPECT_EQ(empty.size(), 0u);
    EXPECT_THROW(empty.map(0), PanicError);
    BlockPartition one(perm, 7, 0);
    EXPECT_EQ(one.size(), 1u);
    EXPECT_THROW(one.map(1), PanicError);
}

TEST(Partition, KindNames)
{
    EXPECT_STREQ(partitionKindName(PartitionKind::cyclic), "cyclic");
    EXPECT_STREQ(partitionKindName(PartitionKind::block), "block");
}

} // namespace
} // namespace anytime
