/**
 * @file
 * Unit and property tests for the closed-form permutations. The key
 * invariant for every permutation in this library is bijectivity: the
 * paper's precise-output guarantee rests on every element being visited
 * exactly once.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sampling/permutation.hpp"
#include "support/error.hpp"

namespace anytime {
namespace {

/** Assert that perm.map is a bijection of [0, n). */
void
expectBijective(const Permutation &perm)
{
    const std::uint64_t n = perm.size();
    std::vector<bool> seen(n, false);
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t p = perm.map(i);
        ASSERT_LT(p, n) << perm.name() << " out of range at " << i;
        ASSERT_FALSE(seen[p])
            << perm.name() << " duplicate at ordinal " << i;
        seen[p] = true;
    }
}

TEST(SequentialPermutation, Identity)
{
    SequentialPermutation perm(10);
    EXPECT_EQ(perm.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(perm.map(i), i);
    expectBijective(perm);
}

TEST(ReversePermutation, Descending)
{
    ReversePermutation perm(10);
    EXPECT_EQ(perm.map(0), 9u);
    EXPECT_EQ(perm.map(9), 0u);
    expectBijective(perm);
}

TEST(StridedPermutation, CoprimeStrideIsBijective)
{
    StridedPermutation perm(100, 7);
    EXPECT_EQ(perm.map(0), 0u);
    EXPECT_EQ(perm.map(1), 7u);
    EXPECT_EQ(perm.map(15), 5u); // 105 mod 100
    expectBijective(perm);
}

TEST(StridedPermutation, NonCoprimeStrideIsRejected)
{
    EXPECT_THROW(StridedPermutation(100, 10), FatalError);
    EXPECT_THROW(StridedPermutation(12, 0), FatalError); // stride%n == 0
    EXPECT_THROW(StridedPermutation(0, 3), FatalError);
}

TEST(StridedPermutation, LargeDomainNoOverflow)
{
    // stride * i would overflow 64 bits without the 128-bit product.
    const std::uint64_t n = (std::uint64_t(1) << 62) + 1;
    StridedPermutation perm(n, n - 2);
    EXPECT_LT(perm.map(n - 1), n);
    EXPECT_LT(perm.map(n / 2), n);
}

TEST(Permutation, CloneIsIndependentAndEqual)
{
    StridedPermutation perm(101, 13);
    const std::unique_ptr<Permutation> copy = perm.clone();
    EXPECT_EQ(copy->size(), perm.size());
    for (std::uint64_t i = 0; i < perm.size(); ++i)
        EXPECT_EQ(copy->map(i), perm.map(i));
}

/** Property sweep: bijectivity across assorted domain sizes. */
class ClosedFormBijectivity
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ClosedFormBijectivity, Sequential)
{
    expectBijective(SequentialPermutation(GetParam()));
}

TEST_P(ClosedFormBijectivity, Reverse)
{
    expectBijective(ReversePermutation(GetParam()));
}

TEST_P(ClosedFormBijectivity, Strided)
{
    const std::uint64_t n = GetParam();
    // Pick the largest stride < n coprime with n.
    std::uint64_t stride = 1;
    for (std::uint64_t s = n - 1; s >= 1; --s) {
        if (std::gcd(s, n) == 1) {
            stride = s;
            break;
        }
    }
    expectBijective(StridedPermutation(n, stride));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClosedFormBijectivity,
                         ::testing::Values<std::uint64_t>(
                             1, 2, 3, 5, 16, 17, 64, 100, 255, 256, 257,
                             1000, 4096));

} // namespace
} // namespace anytime
