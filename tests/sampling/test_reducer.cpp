/**
 * @file
 * Tests for input-sampling reduction: the n/i weighting of the paper's
 * non-idempotent reductions and the precision guarantee at full sample.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sampling/lfsr_permutation.hpp"
#include "sampling/reducer.hpp"
#include "support/rng.hpp"

namespace anytime {
namespace {

TEST(SampleWeight, Basics)
{
    EXPECT_EQ(sampleWeight(0, 100), 0.0);
    EXPECT_DOUBLE_EQ(sampleWeight(50, 100), 2.0);
    EXPECT_DOUBLE_EQ(sampleWeight(100, 100), 1.0);
}

TEST(SampledReducer, FullSampleIsPrecise)
{
    const std::vector<int> data{3, 1, 4, 1, 5, 9, 2, 6};
    SampledReducer<long, std::plus<long>> reducer(0, data.size(),
                                                  std::plus<long>());
    for (int v : data)
        reducer.consume(v);
    EXPECT_TRUE(reducer.precise());
    EXPECT_EQ(reducer.raw(), 31);
    EXPECT_DOUBLE_EQ(reducer.estimate(), 31.0);
}

TEST(SampledReducer, WeightedEstimateTracksSum)
{
    // A uniform data set: the weighted estimate from any prefix should
    // be near the precise sum.
    const std::size_t n = 10000;
    std::vector<std::uint32_t> data(n);
    Xoshiro256 rng(7);
    std::uint64_t precise = 0;
    for (auto &v : data) {
        v = static_cast<std::uint32_t>(rng.nextBelow(1000));
        precise += v;
    }

    LfsrPermutation perm(n, 11);
    SampledReducer<std::uint64_t, std::plus<std::uint64_t>> reducer(
        0, n, std::plus<std::uint64_t>());
    for (std::uint64_t i = 0; i < n / 10; ++i)
        reducer.consume(data[perm.map(i)]);

    const double estimate = reducer.estimate();
    const double error =
        std::abs(estimate - static_cast<double>(precise)) /
        static_cast<double>(precise);
    EXPECT_LT(error, 0.05) << "10% sample estimate off by "
                           << error * 100 << "%";
}

TEST(SampledReducer, IdempotentNeedsNoWeighting)
{
    const std::vector<std::uint64_t> data{5, 17, 3, 9, 11};
    const auto max_op = [](std::uint64_t a, std::uint64_t b) {
        return std::max(a, b);
    };
    SampledReducer<std::uint64_t, decltype(max_op)> reducer(
        0, data.size(), max_op, /*idempotent=*/true);
    reducer.consume(data[0]);
    reducer.consume(data[1]);
    EXPECT_DOUBLE_EQ(reducer.estimate(), 17.0); // unweighted
    for (std::size_t i = 2; i < data.size(); ++i)
        reducer.consume(data[i]);
    EXPECT_TRUE(reducer.precise());
    EXPECT_DOUBLE_EQ(reducer.estimate(), 17.0);
}

TEST(SampledReducer, OverConsumePanics)
{
    SampledReducer<int, std::plus<int>> reducer(0, 1, std::plus<int>());
    reducer.consume(1);
    EXPECT_THROW(reducer.consume(2), PanicError);
}

TEST(SampledReducer, EstimateConvergesMonotonically)
{
    // The estimate error should trend to zero (not necessarily
    // monotone pointwise, so compare coarse prefixes).
    const std::size_t n = 4096;
    std::vector<std::uint32_t> data(n);
    Xoshiro256 rng(99);
    double precise = 0;
    for (auto &v : data) {
        v = static_cast<std::uint32_t>(rng.nextBelow(256));
        precise += v;
    }
    LfsrPermutation perm(n, 5);
    SampledReducer<std::uint64_t, std::plus<std::uint64_t>> reducer(
        0, n, std::plus<std::uint64_t>());

    double err_quarter = 0, err_full = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        reducer.consume(data[perm.map(i)]);
        if (i + 1 == n / 4)
            err_quarter = std::abs(reducer.estimate() - precise);
        if (i + 1 == n)
            err_full = std::abs(reducer.estimate() - precise);
    }
    EXPECT_LT(err_full, 1e-9);
    EXPECT_LT(err_full, err_quarter + 1e-9);
}

} // namespace
} // namespace anytime
