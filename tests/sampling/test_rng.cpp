/**
 * @file
 * Tests for the deterministic RNG substrate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace anytime {
namespace {

TEST(SplitMix64, KnownSequence)
{
    // Reference values for seed 0 from the SplitMix64 reference
    // implementation (Steele, Lea, Flood).
    SplitMix64 mix(0);
    EXPECT_EQ(mix.next(), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(mix.next(), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(mix.next(), 0x06c45d188009454fULL);
}

TEST(Xoshiro256, DeterministicPerSeed)
{
    Xoshiro256 a(42), b(42), c(43);
    bool all_equal = true;
    bool any_differs_from_c = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        const auto vb = b.next();
        const auto vc = c.next();
        all_equal = all_equal && (va == vb);
        any_differs_from_c = any_differs_from_c || (va != vc);
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_differs_from_c);
}

TEST(Xoshiro256, DoubleInUnitInterval)
{
    Xoshiro256 rng(1);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Xoshiro256, NextBelowRespectsBound)
{
    Xoshiro256 rng(2);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform)
{
    Xoshiro256 rng(3);
    const std::uint64_t bound = 10;
    std::uint64_t counts[10] = {};
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        ++counts[rng.nextBelow(bound)];
    for (std::uint64_t count : counts) {
        EXPECT_GT(count, trials / 10 * 0.9);
        EXPECT_LT(count, trials / 10 * 1.1);
    }
}

TEST(Xoshiro256, BernoulliEdgeCases)
{
    Xoshiro256 rng(4);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBernoulli(0.0));
        EXPECT_TRUE(rng.nextBernoulli(1.0));
    }
}

TEST(Xoshiro256, BernoulliFrequency)
{
    Xoshiro256 rng(5);
    const double p = 0.25;
    int hits = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        hits += rng.nextBernoulli(p) ? 1 : 0;
    const double freq = static_cast<double>(hits) / trials;
    EXPECT_NEAR(freq, p, 0.01);
}

TEST(Xoshiro256, GaussianMoments)
{
    Xoshiro256 rng(6);
    const int trials = 50000;
    double sum = 0, sum_sq = 0;
    for (int i = 0; i < trials; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sum_sq += g * g;
    }
    const double mean = sum / trials;
    const double var = sum_sq / trials - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

} // namespace
} // namespace anytime
