/**
 * @file
 * Tests for the support substrate: error reporting and the stopwatch.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "support/error.hpp"
#include "support/stopwatch.hpp"

namespace anytime {
namespace {

TEST(Error, PanicCarriesFormattedMessage)
{
    try {
        panic("bad index ", 42, " in ", "buffer");
        FAIL() << "panic did not throw";
    } catch (const PanicError &error) {
        EXPECT_STREQ(error.what(), "panic: bad index 42 in buffer");
    }
}

TEST(Error, FatalCarriesFormattedMessage)
{
    try {
        fatal("cannot open ", "/no/such/file");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &error) {
        EXPECT_STREQ(error.what(), "fatal: cannot open /no/such/file");
    }
}

TEST(Error, ConditionalFormsOnlyThrowWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "nope"));
    EXPECT_NO_THROW(fatalIf(false, "nope"));
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
}

TEST(Error, PanicAndFatalAreDistinctTypes)
{
    // panic() = library bug, fatal() = user error; handlers must be
    // able to tell them apart.
    EXPECT_THROW(panic("x"), std::logic_error);
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(Stopwatch, MeasuresElapsedTime)
{
    Stopwatch watch;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const double t = watch.seconds();
    EXPECT_GE(t, 0.009);
    EXPECT_LT(t, 5.0);
    EXPECT_GE(watch.elapsed().count(), 9'000'000);
}

TEST(Stopwatch, ResetRestartsTheClock)
{
    Stopwatch watch;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    watch.reset();
    EXPECT_LT(watch.seconds(), 0.005);
}

TEST(Stopwatch, MonotonicNonDecreasing)
{
    Stopwatch watch;
    double prev = 0.0;
    for (int i = 0; i < 100; ++i) {
        const double now = watch.seconds();
        EXPECT_GE(now, prev);
        prev = now;
    }
}

} // namespace
} // namespace anytime
