/**
 * @file
 * Tests for the N-dimensional tree (bit-reverse) permutation: paper
 * Figures 4 and 5 exactly, bijectivity over arbitrary extents, the
 * progressive-resolution property, and block-fill geometry.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "sampling/tree_permutation.hpp"

namespace anytime {
namespace {

void
expectBijective(const Permutation &perm)
{
    const std::uint64_t n = perm.size();
    std::vector<bool> seen(n, false);
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t p = perm.map(i);
        ASSERT_LT(p, n);
        ASSERT_FALSE(seen[p]) << "duplicate at ordinal " << i;
        seen[p] = true;
    }
}

TEST(TreePermutation, OneDimMatchesPaperFigure4)
{
    // 16 elements: p is bit reversal b3b2b1b0 -> b0b1b2b3. After 2^k
    // samples, the visited indices are the multiples of 16/2^k.
    TreePermutation perm = TreePermutation::oneDim(16);
    EXPECT_EQ(perm.map(0), 0u);
    EXPECT_EQ(perm.map(1), 8u);
    EXPECT_EQ(perm.map(2), 4u);
    EXPECT_EQ(perm.map(3), 12u);
    EXPECT_EQ(perm.map(4), 2u);
    EXPECT_EQ(perm.map(5), 10u);
    EXPECT_EQ(perm.map(6), 6u);
    EXPECT_EQ(perm.map(7), 14u);
    EXPECT_EQ(perm.map(8), 1u);
    expectBijective(perm);
}

TEST(TreePermutation, TwoDimMatchesPaperFigure5)
{
    // 8x8: after 1 sample, a 1x1 grid; after 4, the 2x2 corners of 4x4
    // blocks; after 16, a 4x4 grid; after 64, everything.
    TreePermutation perm = TreePermutation::twoDim(8, 8);
    EXPECT_EQ(perm.map(0), 0u); // (row 0, col 0)

    // First 4 samples cover the 2x2 sub-sampled grid {0,4} x {0,4}.
    std::set<std::uint64_t> first4;
    for (std::uint64_t i = 0; i < 4; ++i)
        first4.insert(perm.map(i));
    const std::set<std::uint64_t> expected4 = {
        0 * 8 + 0, 0 * 8 + 4, 4 * 8 + 0, 4 * 8 + 4};
    EXPECT_EQ(first4, expected4);

    // First 16 samples cover the 4x4 grid {0,2,4,6} x {0,2,4,6}.
    std::set<std::uint64_t> first16;
    for (std::uint64_t i = 0; i < 16; ++i)
        first16.insert(perm.map(i));
    std::set<std::uint64_t> expected16;
    for (std::uint64_t r = 0; r < 8; r += 2)
        for (std::uint64_t c = 0; c < 8; c += 2)
            expected16.insert(r * 8 + c);
    EXPECT_EQ(first16, expected16);

    expectBijective(perm);
}

TEST(TreePermutation, SingleElement)
{
    TreePermutation perm = TreePermutation::oneDim(1);
    EXPECT_EQ(perm.size(), 1u);
    EXPECT_EQ(perm.map(0), 0u);
}

TEST(TreePermutation, RejectsEmptyAndZero)
{
    EXPECT_THROW(TreePermutation(std::vector<std::uint64_t>{}),
                 FatalError);
    EXPECT_THROW(TreePermutation({8, 0}), FatalError);
}

TEST(TreePermutation, ThreeDimBijective)
{
    TreePermutation perm({4, 8, 2});
    EXPECT_EQ(perm.size(), 64u);
    expectBijective(perm);
}

TEST(TreePermutation, LevelAfterTracksResolution)
{
    TreePermutation perm = TreePermutation::twoDim(16, 16);
    EXPECT_EQ(perm.levelAfter(0), 0u);
    EXPECT_EQ(perm.levelAfter(1), 0u);
    EXPECT_EQ(perm.levelAfter(4), 1u);   // 2x2 resolved
    EXPECT_EQ(perm.levelAfter(16), 2u);  // 4x4 resolved
    EXPECT_EQ(perm.levelAfter(256), 4u); // fully resolved
}

TEST(TreePermutation, BlockExtentsShrinkToOne)
{
    TreePermutation perm = TreePermutation::twoDim(8, 8);
    // Sample 0 represents the whole padded domain.
    EXPECT_EQ(perm.blockExtents(0), (std::vector<std::uint64_t>{8, 8}));
    // The final samples refine single pixels.
    EXPECT_EQ(perm.blockExtents(63), (std::vector<std::uint64_t>{1, 1}));
}

TEST(TreePermutation, BlockUnionCoversDomainAtEveryPrefix)
{
    // Progressive block fill must yield a complete image after any
    // prefix of samples: the blocks of samples [0, s) tile the domain.
    TreePermutation perm = TreePermutation::twoDim(8, 16);
    const std::size_t rows = 8, cols = 16;
    for (std::uint64_t prefix : {1ull, 3ull, 7ull, 16ull, 50ull, 128ull}) {
        std::vector<int> covered(rows * cols, 0);
        for (std::uint64_t i = 0; i < prefix; ++i) {
            const std::uint64_t flat = perm.map(i);
            const std::uint64_t r = flat / cols, c = flat % cols;
            const auto block = perm.blockExtents(i);
            for (std::uint64_t dr = 0; dr < block[0] && r + dr < rows;
                 ++dr) {
                for (std::uint64_t dc = 0;
                     dc < block[1] && c + dc < cols; ++dc)
                    covered[(r + dr) * cols + (c + dc)] = 1;
            }
        }
        for (std::size_t i = 0; i < covered.size(); ++i)
            ASSERT_EQ(covered[i], 1)
                << "pixel " << i << " uncovered after " << prefix;
    }
}

/** Property sweep: bijectivity across shapes, incl. non-powers of 2. */
class TreeBijectivity
    : public ::testing::TestWithParam<std::vector<std::uint64_t>>
{
};

TEST_P(TreeBijectivity, Bijective)
{
    expectBijective(TreePermutation(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeBijectivity,
    ::testing::Values(std::vector<std::uint64_t>{1},
                      std::vector<std::uint64_t>{2},
                      std::vector<std::uint64_t>{31},
                      std::vector<std::uint64_t>{32},
                      std::vector<std::uint64_t>{33},
                      std::vector<std::uint64_t>{100},
                      std::vector<std::uint64_t>{8, 8},
                      std::vector<std::uint64_t>{16, 4},
                      std::vector<std::uint64_t>{5, 7},
                      std::vector<std::uint64_t>{12, 20},
                      std::vector<std::uint64_t>{9, 16},
                      std::vector<std::uint64_t>{3, 3, 3},
                      std::vector<std::uint64_t>{4, 4, 4},
                      std::vector<std::uint64_t>{2, 3, 5, 7}));

TEST(TreePermutation, NonPow2KeepsProgressiveOrder)
{
    // For non-power-of-two extents the padded schedule is filtered; the
    // first sample must still be the origin and early samples must be
    // spread out (no two of the first four samples adjacent).
    TreePermutation perm = TreePermutation::twoDim(6, 10);
    EXPECT_EQ(perm.map(0), 0u);
    std::vector<std::pair<std::int64_t, std::int64_t>> coords;
    for (std::uint64_t i = 0; i < 4; ++i) {
        const std::uint64_t flat = perm.map(i);
        coords.emplace_back(flat / 10, flat % 10);
    }
    for (std::size_t a = 0; a < coords.size(); ++a) {
        for (std::size_t b = a + 1; b < coords.size(); ++b) {
            const auto dist =
                std::abs(coords[a].first - coords[b].first) +
                std::abs(coords[a].second - coords[b].second);
            EXPECT_GE(dist, 3) << "samples " << a << "," << b
                               << " too close";
        }
    }
}

} // namespace
} // namespace anytime
