/**
 * @file
 * Shared rigs for the serving-runtime tests: a deterministic
 * slow-counter pipeline whose duration, publish cadence, and progress
 * probe are all controllable, packaged as a ServiceRequest factory.
 */

#ifndef ANYTIME_TESTS_SERVICE_TEST_UTIL_HPP
#define ANYTIME_TESTS_SERVICE_TEST_UTIL_HPP

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "core/source_stage.hpp"
#include "service/request.hpp"

namespace anytime {

/** Lets a test reach the output buffer the factory created. */
struct CounterProbe
{
    std::shared_ptr<VersionedBuffer<long>> out;
};

/**
 * Request whose pipeline counts to @p steps, sleeping @p step_us per
 * step, publishing every @p publish_period steps. Progress is the
 * fraction of steps completed, so minQuality is directly testable.
 */
inline ServiceRequest
counterRequest(std::string name, std::uint64_t steps,
               std::uint64_t step_us, std::chrono::nanoseconds deadline,
               double min_quality = 0.0,
               std::shared_ptr<CounterProbe> probe = nullptr,
               std::uint64_t publish_period = 0)
{
    if (publish_period == 0)
        publish_period = std::max<std::uint64_t>(1, steps / 32);
    ServiceRequest request;
    request.name = std::move(name);
    request.deadline = deadline;
    request.minQuality = min_quality;
    request.factory = [steps, step_us, publish_period, probe] {
        auto automaton = std::make_unique<Automaton>();
        auto out = automaton->makeBuffer<long>("count");
        automaton->addStage(std::make_shared<DiffusiveSourceStage<long>>(
            "counter", out, 0L, steps,
            [step_us](std::uint64_t, long &state, StageContext &) {
                state += 1;
                if (step_us > 0)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(step_us));
            },
            publish_period, /*batch=*/1));
        PreparedPipeline pipeline;
        pipeline.progress = [out, steps] {
            const auto snap = out->read();
            return snap ? static_cast<double>(*snap.value) /
                              static_cast<double>(steps)
                        : 0.0;
        };
        pipeline.versionCount = [out] { return out->version(); };
        pipeline.automaton = std::move(automaton);
        if (probe)
            probe->out = out;
        return pipeline;
    };
    return request;
}

} // namespace anytime

#endif // ANYTIME_TESTS_SERVICE_TEST_UTIL_HPP
