/**
 * @file
 * Basic serving-runtime behavior: single requests through the full
 * lifecycle — precise completion under a generous deadline, hard
 * deadline stops with a valid approximate snapshot, zero deadlines
 * answered immediately, and QoR metadata consistency.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "service/server.hpp"
#include "service_test_util.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

TEST(ServerBasic, GenerousDeadlineReachesPrecise)
{
    AnytimeServer server({.workers = 2});
    auto probe = std::make_shared<CounterProbe>();
    auto future = server.submit(
        counterRequest("small", 64, 5, 10s, 0.0, probe));

    ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
    const ServiceResponse response = future.get();
    EXPECT_EQ(response.status, ServiceStatus::preciseCompleted);
    EXPECT_TRUE(response.reachedPrecise);
    EXPECT_TRUE(response.deadlineMet);
    EXPECT_GT(response.versionsPublished, 0u);
    EXPECT_DOUBLE_EQ(response.quality, 1.0);
    // The client-side buffer holds the precise output.
    ASSERT_TRUE(probe->out);
    EXPECT_TRUE(probe->out->final());
    EXPECT_EQ(*probe->out->read().value, 64);
}

TEST(ServerBasic, TightDeadlineAnswersWithApproximateSnapshot)
{
    AnytimeServer server({.workers = 1});
    auto probe = std::make_shared<CounterProbe>();
    // ~10 s of work, 50 ms deadline, publishing every ~1.3 ms.
    auto future = server.submit(counterRequest(
        "big", 1u << 20, 10, 50ms, 0.0, probe, /*publish_period=*/128));

    ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
    const ServiceResponse response = future.get();
    EXPECT_EQ(response.status, ServiceStatus::deadlineApprox);
    EXPECT_FALSE(response.reachedPrecise);
    EXPECT_GT(response.versionsPublished, 0u);
    EXPECT_TRUE(response.deadlineMet);
    EXPECT_GT(response.quality, 0.0);
    EXPECT_LT(response.quality, 1.0);
    // The deadline selected the accuracy; the snapshot is valid.
    ASSERT_TRUE(probe->out);
    EXPECT_GT(*probe->out->read().value, 0);
    // Stopped near the deadline, not after running to completion.
    EXPECT_LT(response.totalSeconds, 5.0);
}

TEST(ServerBasic, ZeroDeadlineRespondsImmediatelyNotHangs)
{
    AnytimeServer server({.workers = 1});
    auto future =
        server.submit(counterRequest("now", 1u << 20, 10, 0ns));

    ASSERT_EQ(future.wait_for(1s), std::future_status::ready);
    const ServiceResponse response = future.get();
    EXPECT_EQ(response.status, ServiceStatus::expired);
    EXPECT_EQ(response.versionsPublished, 0u);
    EXPECT_FALSE(response.deadlineMet);
    EXPECT_LT(response.totalSeconds, 1.0);
}

TEST(ServerBasic, NegativeDeadlineTreatedAsExpired)
{
    AnytimeServer server({.workers = 1});
    auto future =
        server.submit(counterRequest("past", 64, 1, -5ms));
    ASSERT_EQ(future.wait_for(1s), std::future_status::ready);
    EXPECT_EQ(future.get().status, ServiceStatus::expired);
}

TEST(ServerBasic, TimingMetadataIsConsistent)
{
    AnytimeServer server({.workers = 1});
    auto future = server.submit(counterRequest("timed", 256, 5, 10s));
    ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
    const ServiceResponse response = future.get();
    EXPECT_GE(response.queueSeconds, 0.0);
    EXPECT_GT(response.execSeconds, 0.0);
    EXPECT_LE(response.queueSeconds + response.execSeconds,
              response.totalSeconds + 1e-3);
}

TEST(ServerBasic, MetricsAccumulateAcrossRequests)
{
    AnytimeServer server({.workers = 2});
    std::vector<std::future<ServiceResponse>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(server.submit(
            counterRequest("m" + std::to_string(i), 64, 2, 10s)));
    for (auto &future : futures)
        ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
    server.drain();

    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.total(), 4u);
    EXPECT_EQ(metrics.served(), 4u);
    EXPECT_EQ(metrics.precise(), 4u);
    EXPECT_DOUBLE_EQ(metrics.hitRate(), 1.0);
    EXPECT_GT(metrics.latencyPercentile(95), 0.0);
    EXPECT_GE(metrics.latencyPercentile(95),
              metrics.latencyPercentile(50));
}

} // namespace
} // namespace anytime
