/**
 * @file
 * Brownout controller tests: the pressure score, hysteresis-gated
 * level walk, deterministic seeded hard-shed verdicts, and the
 * end-to-end admission path — a loaded server climbing to survival
 * mode and shedding deterministically while the accounting identity
 * holds.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "service/brownout.hpp"
#include "service/server.hpp"
#include "service_test_util.hpp"
#include "support/error.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

double
counterValue(const obs::MetricsRegistry &registry,
             const std::string &name)
{
    for (const auto &row : registry.snapshot())
        if (row.name == name)
            return row.value;
    return -1.0;
}

void
expectAccountingIdentity(const ServiceMetrics &metrics)
{
    EXPECT_EQ(metrics.total(),
              metrics.served() + metrics.shed() + metrics.expired() +
                  metrics.failed() + metrics.cancelled() +
                  metrics.degraded());
}

/** Enabled controller config with handy test hysteresis. */
BrownoutConfig
testConfig()
{
    BrownoutConfig config;
    config.enabled = true;
    config.evalInterval = 1ms;
    config.enterHysteresis = 2;
    config.exitHysteresis = 3;
    return config;
}

/** Evaluate with @p signals at a fresh timestamp (past the rate
 *  limit), advancing @p now by 2 ms per call. */
bool
step(BrownoutController &controller,
     Stopwatch::Clock::time_point &now,
     const BrownoutController::Signals &signals)
{
    now += 2ms;
    return controller.evaluate(now, signals);
}

TEST(BrownoutController, PressureIsTheMaxOfTheNormalizedSignals)
{
    obs::MetricsRegistry registry;
    BrownoutController controller(testConfig(), registry);
    auto now = Stopwatch::Clock::now();

    // Miss-rate EWMA normalizes against missRateReference (0.5).
    step(controller, now, {.missRate = 0.25});
    EXPECT_DOUBLE_EQ(controller.pressure(), 0.5);

    // Build p99 normalizes against buildLatencyBudget (50 ms).
    step(controller, now, {.p99BuildSeconds = 0.05});
    EXPECT_DOUBLE_EQ(controller.pressure(), 1.0);

    // max(), not sum: the dominant signal alone sets the score.
    step(controller, now,
         {.queueFraction = 0.9, .missRate = 0.1,
          .p99BuildSeconds = 0.001});
    EXPECT_DOUBLE_EQ(controller.pressure(), 0.9);
}

TEST(BrownoutController, HysteresisGatesTheLevelWalkBothWays)
{
    obs::MetricsRegistry registry;
    BrownoutController controller(testConfig(), registry);
    auto now = Stopwatch::Clock::now();
    const BrownoutController::Signals high{.queueFraction = 1.0};
    const BrownoutController::Signals low{.queueFraction = 0.0};

    // Escalation: one level per enterHysteresis (2) high evaluations,
    // never more than one step at a time.
    EXPECT_EQ(controller.level(), 0);
    EXPECT_FALSE(step(controller, now, high));
    EXPECT_EQ(controller.level(), 0);
    EXPECT_TRUE(step(controller, now, high));
    EXPECT_EQ(controller.level(), 1);
    EXPECT_FALSE(step(controller, now, high));
    EXPECT_TRUE(step(controller, now, high));
    EXPECT_EQ(controller.level(), 2);
    EXPECT_FALSE(step(controller, now, high));
    EXPECT_TRUE(step(controller, now, high));
    EXPECT_EQ(controller.level(), 3);

    // Saturated: more pressure cannot push past L3.
    EXPECT_FALSE(step(controller, now, high));
    EXPECT_EQ(controller.level(), 3);

    // Recovery is slower: exitHysteresis (3) low evaluations per step.
    EXPECT_FALSE(step(controller, now, low));
    EXPECT_FALSE(step(controller, now, low));
    EXPECT_TRUE(step(controller, now, low));
    EXPECT_EQ(controller.level(), 2);
    EXPECT_FALSE(step(controller, now, low));
    EXPECT_FALSE(step(controller, now, low));
    EXPECT_TRUE(step(controller, now, low));
    EXPECT_EQ(controller.level(), 1);

    // A pressure spike resets the below-streak: recovery starts over.
    EXPECT_FALSE(step(controller, now, low));
    EXPECT_FALSE(step(controller, now, low));
    EXPECT_FALSE(step(controller, now, high));
    EXPECT_FALSE(step(controller, now, low));
    EXPECT_FALSE(step(controller, now, low));
    EXPECT_TRUE(step(controller, now, low));
    EXPECT_EQ(controller.level(), 0);

    EXPECT_EQ(controller.transitions(), 6u);
    EXPECT_DOUBLE_EQ(
        counterValue(registry, "anytime_brownout_transitions_total"),
        6.0);
    EXPECT_DOUBLE_EQ(counterValue(registry, "anytime_brownout_level"),
                     0.0);
}

TEST(BrownoutController, EvaluationIsRateLimitedAndOffByDefault)
{
    obs::MetricsRegistry registry;
    BrownoutConfig eager = testConfig();
    eager.enterHysteresis = 1;
    BrownoutController limited(eager, registry);
    const auto base = Stopwatch::Clock::now();
    const BrownoutController::Signals high{.queueFraction = 1.0};

    // Two samples inside one evalInterval: the second is ignored, so
    // the level moves once, not twice.
    EXPECT_TRUE(limited.evaluate(base, high));
    EXPECT_FALSE(limited.evaluate(base + 100us, high));
    EXPECT_EQ(limited.level(), 1);

    // Disabled controller never moves, whatever the pressure.
    obs::MetricsRegistry registry2;
    BrownoutController disabled(BrownoutConfig{}, registry2);
    auto now = base;
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(step(disabled, now, high));
    EXPECT_EQ(disabled.level(), 0);
    EXPECT_FALSE(disabled.shouldShed(42));
}

TEST(BrownoutController, RejectsAThresholdOrderingThatWouldFlap)
{
    obs::MetricsRegistry registry;
    BrownoutConfig bad = testConfig();
    bad.exitPressure[1] = bad.enterPressure[1]; // exit must sit below
    EXPECT_THROW(BrownoutController(bad, registry), FatalError);
}

TEST(BrownoutController, HardShedVerdictsAreSeededAndDeterministic)
{
    // Drive two identically-configured controllers to L3 and compare
    // their per-id verdicts: the shed decision is a pure function of
    // (seed, request id), so an overload replay accounts identically.
    BrownoutConfig config = testConfig();
    config.enterHysteresis = 1;
    config.seed = 7;
    const BrownoutController::Signals high{.queueFraction = 1.0};

    obs::MetricsRegistry registryA;
    obs::MetricsRegistry registryB;
    BrownoutController a(config, registryA);
    BrownoutController b(config, registryB);
    auto nowA = Stopwatch::Clock::now();
    auto nowB = nowA;
    for (int i = 0; i < 3; ++i) {
        step(a, nowA, high);
        step(b, nowB, high);
    }
    ASSERT_EQ(a.level(), 3);
    ASSERT_EQ(b.level(), 3);

    // Default L3 sheds 50%: over many ids the rate lands near it, and
    // the two controllers agree on every single verdict.
    unsigned shed = 0;
    for (std::uint64_t id = 1; id <= 1000; ++id) {
        EXPECT_EQ(a.shouldShed(id), b.shouldShed(id)) << id;
        if (a.shouldShed(id))
            ++shed;
    }
    EXPECT_GT(shed, 350u);
    EXPECT_LT(shed, 650u);

    // A different seed draws a different (still deterministic) set.
    BrownoutConfig reseeded = config;
    reseeded.seed = 8;
    obs::MetricsRegistry registryC;
    BrownoutController c(reseeded, registryC);
    auto nowC = Stopwatch::Clock::now();
    for (int i = 0; i < 3; ++i)
        step(c, nowC, high);
    ASSERT_EQ(c.level(), 3);
    bool differs = false;
    for (std::uint64_t id = 1; id <= 1000 && !differs; ++id)
        differs = a.shouldShed(id) != c.shouldShed(id);
    EXPECT_TRUE(differs);
}

/** Aggressive thresholds: any queue backlog pushes straight to L3. */
ServerConfig
overloadedServerConfig(obs::MetricsRegistry &registry)
{
    ServerConfig config;
    config.workers = 1;
    config.maxQueueDepth = 4;
    config.metricsRegistry = &registry;
    config.brownout.enabled = true;
    config.brownout.evalInterval = 1ms;
    config.brownout.enterHysteresis = 1;
    config.brownout.exitHysteresis = 1000; // pin the level once up
    config.brownout.enterPressure = {0.05, 0.10, 0.15};
    config.brownout.exitPressure = {0.01, 0.02, 0.03};
    config.brownout.levels[3].hardShedPercent = 100;
    return config;
}

TEST(ServerBrownout, SurvivalModeShedsAtAdmissionAndBooksBalance)
{
    obs::MetricsRegistry registry;
    AnytimeServer server(overloadedServerConfig(registry));

    // One runner occupying the only worker plus a backlog: queue
    // fraction 3/4 clears every enter threshold, so the controller
    // climbs to L3 within a few scheduler evaluations.
    std::vector<std::future<ServiceResponse>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(server.submit(counterRequest(
            "load" + std::to_string(i), 300, 1000, 30s)));
    const auto start = std::chrono::steady_clock::now();
    while (server.brownoutLevel() < 3 &&
           std::chrono::steady_clock::now() - start < 5s)
        std::this_thread::sleep_for(1ms);
    ASSERT_EQ(server.brownoutLevel(), 3);
    EXPECT_EQ(server.brownoutPolicy().hardShedPercent, 100u);
    EXPECT_GE(server.brownoutControl().transitions(), 3u);

    // At 100% hard shed every new submission is refused immediately,
    // with the brownout-specific status (not a queue-full shed: the
    // queue still has room).
    auto shedFuture =
        server.submit(counterRequest("late", 300, 1000, 30s));
    ASSERT_EQ(shedFuture.wait_for(5s), std::future_status::ready);
    EXPECT_EQ(shedFuture.get().status, ServiceStatus::shedBrownout);

    for (auto &future : futures)
        ASSERT_EQ(future.wait_for(20s), std::future_status::ready);
    server.drain();

    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.total(), 5u);
    EXPECT_EQ(metrics.shed(), 1u);
    expectAccountingIdentity(metrics);
    EXPECT_GE(counterValue(registry, "anytime_brownout_shed_total"),
              1.0);
    EXPECT_GE(
        counterValue(registry, "anytime_brownout_transitions_total"),
        3.0);

    // The level gauge is live in the Prometheus exposition (the
    // operator's first overload signal).
    std::ostringstream exposition;
    registry.writePrometheus(exposition);
    EXPECT_NE(exposition.str().find(
                  "# TYPE anytime_brownout_level gauge"),
              std::string::npos);
    EXPECT_NE(exposition.str().find("anytime_brownout_level 3"),
              std::string::npos);
}

TEST(ServerBrownout, DisabledControllerKeepsLegacyAdmission)
{
    // Same overload shape with brownout off: nothing is brownout-shed
    // and the level never leaves 0 — existing deployments see the
    // binary queue-full/EWMA behavior unchanged.
    obs::MetricsRegistry registry;
    ServerConfig config = overloadedServerConfig(registry);
    config.brownout.enabled = false;
    AnytimeServer server(config);

    std::vector<std::future<ServiceResponse>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(server.submit(counterRequest(
            "flat" + std::to_string(i), 100, 1000, 30s)));
    for (auto &future : futures)
        ASSERT_EQ(future.wait_for(20s), std::future_status::ready);
    server.drain();
    EXPECT_EQ(server.brownoutLevel(), 0);
    EXPECT_DOUBLE_EQ(
        counterValue(registry, "anytime_brownout_shed_total"), 0.0);
    expectAccountingIdentity(server.metricsSnapshot());
}

} // namespace
} // namespace anytime
