/**
 * @file
 * In-process cancellation under load: submitTracked + cancel racing
 * dispatch. Whatever the race's outcome — cancelled while queued,
 * cancelled while running, or completed before the cancel landed —
 * every request ends in exactly one accounting bucket and the identity
 * total == served + shed + expired + failed + cancelled + degraded
 * holds.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "service/server.hpp"
#include "service_test_util.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

void
expectAccountingIdentity(const ServiceMetrics &metrics)
{
    EXPECT_EQ(metrics.total(),
              metrics.served() + metrics.shed() + metrics.expired() +
                  metrics.failed() + metrics.cancelled() +
                  metrics.degraded());
}

TEST(ServerCancel, UnknownIdIsRejected)
{
    AnytimeServer server({.workers = 1});
    EXPECT_FALSE(server.cancel(0));
    EXPECT_FALSE(server.cancel(12345));
}

TEST(ServerCancel, QueuedRequestCancelsImmediately)
{
    AnytimeServer server({.workers = 1});
    // Occupy the single worker so the second request stays queued.
    auto blocker =
        server.submitTracked(counterRequest("blocker", 4000, 500, 10s));
    auto queued =
        server.submitTracked(counterRequest("queued", 4000, 500, 10s));
    EXPECT_TRUE(server.cancel(queued.id));
    // A cancelled id is gone: a second cancel finds nothing.
    EXPECT_FALSE(server.cancel(queued.id));
    ASSERT_EQ(queued.response.wait_for(2s), std::future_status::ready);
    EXPECT_EQ(queued.response.get().status, ServiceStatus::cancelled);
    EXPECT_TRUE(server.cancel(blocker.id));
    server.drain();
    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.total(), 2u);
    EXPECT_EQ(metrics.cancelled(), 2u);
    expectAccountingIdentity(metrics);
}

TEST(ServerCancel, RunningRequestStopsEarly)
{
    AnytimeServer server({.workers = 2});
    // ~10 s of work; the cancel must stop it far sooner.
    auto submission =
        server.submitTracked(counterRequest("long", 10000, 1000, 60s));
    const auto start = std::chrono::steady_clock::now();
    while (server.runningCount() == 0 &&
           std::chrono::steady_clock::now() - start < 5s)
        std::this_thread::sleep_for(1ms);
    ASSERT_GT(server.runningCount(), 0u) << "request never dispatched";
    EXPECT_TRUE(server.cancel(submission.id));
    ASSERT_EQ(submission.response.wait_for(5s),
              std::future_status::ready);
    const ServiceResponse response = submission.response.get();
    EXPECT_EQ(response.status, ServiceStatus::cancelled);
    EXPECT_LT(response.totalSeconds, 5.0);
    server.drain();
    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.cancelled(), 1u);
    expectAccountingIdentity(metrics);
}

TEST(ServerCancel, CompletedRequestCannotBeCancelled)
{
    AnytimeServer server({.workers = 1});
    auto submission =
        server.submitTracked(counterRequest("quick", 32, 5, 10s));
    ASSERT_EQ(submission.response.wait_for(10s),
              std::future_status::ready);
    EXPECT_EQ(submission.response.get().status,
              ServiceStatus::preciseCompleted);
    server.drain();
    EXPECT_FALSE(server.cancel(submission.id));
    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.served(), 1u);
    EXPECT_EQ(metrics.cancelled(), 0u);
    expectAccountingIdentity(metrics);
}

TEST(ServerCancel, CancelRacingDispatchUnderLoadKeepsIdentity)
{
    constexpr std::size_t kRequests = 24;
    AnytimeServer server({.workers = 2, .maxQueueDepth = 8});
    std::vector<Submission> submissions;
    submissions.reserve(kRequests);
    // Submit a burst and cancel every other request immediately — some
    // cancels land while the request is queued, some while it is
    // running, some lose the race entirely (already shed or served).
    for (std::size_t i = 0; i < kRequests; ++i) {
        submissions.push_back(server.submitTracked(counterRequest(
            "race-" + std::to_string(i), 200, 500, 5s)));
        if (i % 2 == 1)
            server.cancel(submissions.back().id);
    }
    std::size_t cancelled = 0;
    for (auto &submission : submissions) {
        ASSERT_EQ(submission.response.wait_for(30s),
                  std::future_status::ready);
        if (submission.response.get().status ==
            ServiceStatus::cancelled)
            ++cancelled;
    }
    server.drain();
    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.total(), kRequests);
    EXPECT_EQ(metrics.cancelled(), cancelled);
    EXPECT_GE(metrics.cancelled(), 1u);
    expectAccountingIdentity(metrics);
}

TEST(ServerCancel, OnCompleteFiresForCancelledRequests)
{
    AnytimeServer server({.workers = 1});
    std::promise<ServiceStatus> seen;
    auto future = seen.get_future();
    ServiceRequest request = counterRequest("hooked", 4000, 1000, 30s);
    request.onComplete = [&seen](const ServiceResponse &response) {
        seen.set_value(response.status);
    };
    auto blocker =
        server.submitTracked(counterRequest("blocker", 4000, 1000, 30s));
    auto submission = server.submitTracked(std::move(request));
    EXPECT_TRUE(server.cancel(submission.id));
    ASSERT_EQ(future.wait_for(5s), std::future_status::ready);
    EXPECT_EQ(future.get(), ServiceStatus::cancelled);
    server.cancel(blocker.id);
    server.drain();
    expectAccountingIdentity(server.metricsSnapshot());
}

} // namespace
} // namespace anytime
