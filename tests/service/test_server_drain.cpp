/**
 * @file
 * Graceful-drain tests (the SIGTERM path): new submissions are
 * rejected promptly, finishers finish precise, leftovers at grace
 * expiry salvage as `degraded` when they published (the anytime
 * contract applied to shutdown) and `cancelled` only when they never
 * produced output — with the accounting identity intact throughout.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "service/server.hpp"
#include "service_test_util.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

double
counterValue(const obs::MetricsRegistry &registry,
             const std::string &name)
{
    for (const auto &row : registry.snapshot())
        if (row.name == name)
            return row.value;
    return -1.0;
}

void
expectAccountingIdentity(const ServiceMetrics &metrics)
{
    EXPECT_EQ(metrics.total(),
              metrics.served() + metrics.shed() + metrics.expired() +
                  metrics.failed() + metrics.cancelled() +
                  metrics.degraded());
}

TEST(ServerDrain, RejectsSubmissionsOnceDraining)
{
    obs::MetricsRegistry registry;
    ServerConfig config;
    config.workers = 1;
    config.metricsRegistry = &registry;
    AnytimeServer server(config);

    server.beginDrain(1s);
    auto future = server.submit(counterRequest("late", 64, 5, 10s));
    ASSERT_EQ(future.wait_for(5s), std::future_status::ready);
    EXPECT_EQ(future.get().status, ServiceStatus::cancelled);

    // Nothing was ever accepted, so the drain is already complete.
    EXPECT_TRUE(server.drainComplete());
    server.drain();
    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.total(), 1u);
    EXPECT_EQ(metrics.cancelled(), 1u);
    expectAccountingIdentity(metrics);
    EXPECT_DOUBLE_EQ(
        counterValue(registry, "anytime_drain_rejected_total"), 1.0);
    EXPECT_DOUBLE_EQ(
        counterValue(registry, "anytime_drain_begun_total"), 1.0);
}

TEST(ServerDrain, GraceExpirySalvagesPublishedWorkAsDegraded)
{
    obs::MetricsRegistry registry;
    ServerConfig config;
    config.workers = 1;
    config.metricsRegistry = &registry;
    AnytimeServer server(config);

    // ~5 s pipeline publishing every ~50 ms: by the time the drain's
    // 100 ms grace expires it has published versions but is nowhere
    // near precise — the harvest must keep them.
    auto probe = std::make_shared<CounterProbe>();
    auto future = server.submit(counterRequest(
        "salvage", 5000, 1000, 30s, 0.0, probe, /*publish_period=*/50));
    const auto start = std::chrono::steady_clock::now();
    while ((!probe->out || probe->out->version() == 0) &&
           std::chrono::steady_clock::now() - start < 10s)
        std::this_thread::sleep_for(2ms);
    ASSERT_TRUE(probe->out);
    ASSERT_GT(probe->out->version(), 0u);

    EXPECT_FALSE(server.drainComplete()); // not draining yet
    server.beginDrain(100ms);
    server.beginDrain(100ms); // idempotent
    ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
    const ServiceResponse response = future.get();
    EXPECT_EQ(response.status, ServiceStatus::degraded);
    EXPECT_GT(response.versionsPublished, 0u);
    EXPECT_TRUE(response.deadlineMet);

    server.drain(); // blocking wait pairs with beginDrain()
    EXPECT_TRUE(server.drainComplete());
    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.total(), 1u);
    EXPECT_EQ(metrics.degraded(), 1u);
    expectAccountingIdentity(metrics);
    EXPECT_DOUBLE_EQ(
        counterValue(registry, "anytime_drain_begun_total"), 1.0);
    EXPECT_DOUBLE_EQ(
        counterValue(registry, "anytime_drain_salvaged_total"), 1.0);
}

TEST(ServerDrain, AcceptedWorkFinishesPreciseWithinTheGrace)
{
    AnytimeServer server({.workers = 1});
    // ~50 ms pipeline, 5 s grace: the drain must not cut short work
    // that can still finish precise in time.
    auto future = server.submit(counterRequest("finisher", 50, 1000, 10s));
    server.beginDrain(5s);
    ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
    EXPECT_EQ(future.get().status, ServiceStatus::preciseCompleted);
    server.drain();
    EXPECT_TRUE(server.drainComplete());
    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.served(), 1u);
    expectAccountingIdentity(metrics);
}

/**
 * Stage that works silently for @c runtime and only publishes its
 * (final) output at the very end. A DiffusiveSourceStage cannot model
 * this: its first completed batch always publishes, so a drain-stop
 * can always salvage something. Here a stop before completion leaves
 * the output buffer at version 0.
 */
class MuteStage : public Stage
{
  public:
    MuteStage(std::shared_ptr<VersionedBuffer<long>> out,
              std::chrono::milliseconds runtime)
        : Stage("mute"), out(std::move(out)), runtime(runtime)
    {
    }

    void
    run(StageContext &ctx) override
    {
        const auto start = std::chrono::steady_clock::now();
        while (std::chrono::steady_clock::now() - start < runtime) {
            if (!ctx.checkpoint())
                return; // stopped with nothing ever published
            ctx.addWork(1);
            std::this_thread::sleep_for(1ms);
        }
        out->publish(1L, /*final=*/true);
    }

    std::vector<const BufferBase *> reads() const override { return {}; }
    const BufferBase *writes() const override { return out.get(); }

  private:
    std::shared_ptr<VersionedBuffer<long>> out;
    std::chrono::milliseconds runtime;
};

ServiceRequest
muteRequest(std::string name, std::chrono::milliseconds runtime,
            std::chrono::nanoseconds deadline)
{
    ServiceRequest request;
    request.name = std::move(name);
    request.deadline = deadline;
    request.factory = [runtime] {
        auto automaton = std::make_unique<Automaton>();
        auto out = automaton->makeBuffer<long>("mute");
        automaton->addStage(std::make_shared<MuteStage>(out, runtime));
        PreparedPipeline pipeline;
        pipeline.progress = [out] {
            return out->version() > 0 ? 1.0 : 0.0;
        };
        pipeline.versionCount = [out] { return out->version(); };
        pipeline.automaton = std::move(automaton);
        return pipeline;
    };
    return request;
}

TEST(ServerDrain, UnpublishedWorkCancelsAtGraceExpiry)
{
    obs::MetricsRegistry registry;
    ServerConfig config;
    config.workers = 1;
    config.metricsRegistry = &registry;
    AnytimeServer server(config);

    // An all-or-nothing pipeline: nothing lands until the (never
    // reached) precise output, so the grace-expiry harvest has no
    // snapshot to salvage and the request cancels.
    auto future = server.submit(muteRequest("mute", 5000ms, 30s));
    const auto start = std::chrono::steady_clock::now();
    while (server.runningCount() == 0 &&
           std::chrono::steady_clock::now() - start < 10s)
        std::this_thread::sleep_for(2ms);
    ASSERT_EQ(server.runningCount(), 1u);

    server.beginDrain(50ms);
    ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
    const ServiceResponse response = future.get();
    EXPECT_EQ(response.status, ServiceStatus::cancelled);
    EXPECT_EQ(response.versionsPublished, 0u);

    server.drain();
    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.cancelled(), 1u);
    EXPECT_DOUBLE_EQ(
        counterValue(registry, "anytime_drain_salvaged_total"), 0.0);
    expectAccountingIdentity(metrics);
}

TEST(ServerDrain, MixedBacklogLandsEveryRequestInOneBucket)
{
    // A drain over a mixed backlog: a finisher, two slow publishers,
    // and a post-drain submission. Wherever each lands, the books
    // must balance and every future must resolve.
    obs::MetricsRegistry registry;
    ServerConfig config;
    config.workers = 2;
    config.metricsRegistry = &registry;
    AnytimeServer server(config);

    auto quick = server.submit(counterRequest("quick", 30, 1000, 10s));
    auto slowA = server.submit(counterRequest(
        "slowA", 5000, 1000, 30s, 0.0, nullptr, /*publish_period=*/50));
    auto slowB = server.submit(counterRequest(
        "slowB", 5000, 1000, 30s, 0.0, nullptr, /*publish_period=*/50));
    std::this_thread::sleep_for(100ms);
    server.beginDrain(200ms);
    auto late = server.submit(counterRequest("late", 30, 1000, 10s));

    for (auto *future : {&quick, &slowA, &slowB, &late})
        ASSERT_EQ(future->wait_for(15s), std::future_status::ready);
    EXPECT_EQ(late.get().status, ServiceStatus::cancelled);
    server.drain();
    EXPECT_TRUE(server.drainComplete());

    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.total(), 4u);
    expectAccountingIdentity(metrics);
    EXPECT_DOUBLE_EQ(
        counterValue(registry, "anytime_drain_begun_total"), 1.0);
}

} // namespace
} // namespace anytime
