/**
 * @file
 * Serving-runtime edge cases: failing pipelines, min-quality graceful
 * degradation under backlog, drain semantics, and shutdown with work
 * in flight.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "service/server.hpp"
#include "service_test_util.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

/** A pipeline that publishes one version, then throws mid-sweep. */
ServiceRequest
boomRequest()
{
    ServiceRequest request;
    request.name = "boom";
    request.deadline = 5s;
    request.factory = [] {
        auto automaton = std::make_unique<Automaton>();
        auto out = automaton->makeBuffer<long>("out");
        automaton->addStage(std::make_shared<DiffusiveSourceStage<long>>(
            "thrower", out, 0L, 100,
            [](std::uint64_t step, long &state, StageContext &) {
                if (step == 5)
                    throw std::runtime_error("stage exploded");
                state += 1;
            },
            /*publish_period=*/10, /*batch=*/1));
        PreparedPipeline pipeline;
        pipeline.automaton = std::move(automaton);
        return pipeline;
    };
    return request;
}

TEST(ServerEdge, FailingPipelineSalvagedDegradedByDefault)
{
    // Under the default quarantine policy a faulting pipeline that
    // published is salvaged: the response carries the last good
    // snapshot flagged degraded, plus the failure diagnostics.
    AnytimeServer server({.workers = 1});
    auto future = server.submit(boomRequest());
    ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
    const ServiceResponse response = future.get();
    EXPECT_EQ(response.status, ServiceStatus::degraded);
    EXPECT_TRUE(response.degraded);
    EXPECT_GT(response.versionsPublished, 0u);
    ASSERT_FALSE(response.failures.empty());
    EXPECT_NE(response.failures.front().find("stage exploded"),
              std::string::npos);
}

TEST(ServerEdge, FailingPipelineFailsFastUnderStopAllPolicy)
{
    // stopAll restores the strict semantics: any stage fault fails
    // the request, published versions notwithstanding.
    AnytimeServer server(
        {.workers = 1, .pipelineFaultPolicy = FaultPolicy::stopAll});
    auto future = server.submit(boomRequest());
    ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
    const ServiceResponse response = future.get();
    EXPECT_EQ(response.status, ServiceStatus::failed);
    EXPECT_FALSE(response.degraded);
    ASSERT_FALSE(response.failures.empty());
    EXPECT_NE(response.failures.front().find("stage exploded"),
              std::string::npos);
}

TEST(ServerEdge, ThrowingFactoryReportsFailure)
{
    AnytimeServer server({.workers = 1});
    ServiceRequest request;
    request.name = "no-build";
    request.deadline = 5s;
    request.factory = []() -> PreparedPipeline {
        throw std::runtime_error("factory exploded");
    };
    auto future = server.submit(std::move(request));
    ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
    const ServiceResponse response = future.get();
    EXPECT_EQ(response.status, ServiceStatus::failed);
    ASSERT_FALSE(response.failures.empty());
    EXPECT_NE(response.failures.front().find("factory exploded"),
              std::string::npos);
}

TEST(ServerEdge, MinQualityDegradesUnderBacklog)
{
    AnytimeServer server({.workers = 1});
    auto probe = std::make_shared<CounterProbe>();
    // ~200 ms of work, generous deadline, but a 0.2 quality floor.
    auto degradable = server.submit(counterRequest(
        "degradable", 20000, 10, 10s, /*min_quality=*/0.2, probe,
        /*publish_period=*/100));

    // Wait until it runs, then create a backlog behind it.
    const auto give_up = std::chrono::steady_clock::now() + 10s;
    while (server.runningCount() < 1 &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(200us);
    ASSERT_GE(server.runningCount(), 1u);
    auto waiter = server.submit(counterRequest("waiter", 64, 2, 10s));

    ASSERT_EQ(degradable.wait_for(60s), std::future_status::ready);
    const ServiceResponse response = degradable.get();
    EXPECT_EQ(response.status, ServiceStatus::qualityStopped);
    EXPECT_FALSE(response.reachedPrecise);
    EXPECT_GE(response.quality, 0.2);
    EXPECT_TRUE(response.deadlineMet);

    ASSERT_EQ(waiter.wait_for(60s), std::future_status::ready);
    EXPECT_EQ(waiter.get().status, ServiceStatus::preciseCompleted);
}

TEST(ServerEdge, NoBacklogMeansNoDegradation)
{
    AnytimeServer server({.workers = 1});
    // Quality floor present but no one waiting: runs to precise.
    auto future = server.submit(
        counterRequest("alone", 2000, 10, 10s, /*min_quality=*/0.1));
    ASSERT_EQ(future.wait_for(60s), std::future_status::ready);
    EXPECT_EQ(future.get().status, ServiceStatus::preciseCompleted);
}

TEST(ServerEdge, DrainWaitsForEveryResponse)
{
    AnytimeServer server({.workers = 2});
    for (int i = 0; i < 5; ++i)
        (void)server.submit(
            counterRequest("d" + std::to_string(i), 128, 5, 10s));
    server.drain();
    EXPECT_EQ(server.pendingCount(), 0u);
    EXPECT_EQ(server.runningCount(), 0u);
    EXPECT_EQ(server.metricsSnapshot().total(), 5u);
}

TEST(ServerEdge, DestructionCancelsInFlightWork)
{
    std::vector<std::future<ServiceResponse>> futures;
    {
        AnytimeServer server({.workers = 1});
        futures.push_back(server.submit(
            counterRequest("running", 50000, 10, 30s)));
        for (int i = 0; i < 5; ++i)
            futures.push_back(server.submit(
                counterRequest("queued" + std::to_string(i), 50000, 10,
                               30s)));
        // Destructor: pending cancelled, running stopped and harvested.
    }
    for (auto &future : futures) {
        ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
        const ServiceResponse response = future.get();
        EXPECT_TRUE(response.status == ServiceStatus::cancelled ||
                    servedStatus(response.status));
    }
}

TEST(ServerEdge, SlowFactoriesDoNotStarveDeadlineEnforcement)
{
    // Regression test: pipeline factories run on the scheduler thread
    // at dispatch time, and a burst of them used to keep the scheduler
    // inside its dispatch phase long enough for an already-running
    // request to blow through its deadline all the way to precise. The
    // scheduler must re-enforce deadlines after every factory build.
    AnytimeServer server({.workers = 2});

    // ~12 ms of work on a 4 ms deadline: must be stopped early. Short
    // enough that it would run to precise if deadline enforcement
    // waited out the whole build burst below (~32 ms).
    auto probe = std::make_shared<CounterProbe>();
    auto tight = server.submit(counterRequest("tight", 1200, 10, 4ms,
                                              0.0, probe,
                                              /*publish_period=*/50));

    // A queue of slow-to-build requests right behind it. The sleeping
    // factories model the multi-millisecond construction cost of the
    // real image pipelines without burning CPU the runner needs.
    std::vector<std::future<ServiceResponse>> slow;
    for (int i = 0; i < 4; ++i) {
        ServiceRequest request;
        request.name = "slowbuild" + std::to_string(i);
        request.deadline = 10s;
        request.factory = [] {
            std::this_thread::sleep_for(8ms);
            auto automaton = std::make_unique<Automaton>();
            auto out = automaton->makeBuffer<long>("out");
            automaton->addStage(
                std::make_shared<DiffusiveSourceStage<long>>(
                    "quick", out, 0L, 8,
                    [](std::uint64_t, long &state, StageContext &) {
                        state += 1;
                    },
                    /*publish_period=*/4, /*batch=*/1));
            PreparedPipeline pipeline;
            pipeline.automaton = std::move(automaton);
            return pipeline;
        };
        slow.push_back(server.submit(std::move(request)));
    }

    ASSERT_EQ(tight.wait_for(60s), std::future_status::ready);
    const ServiceResponse response = tight.get();
    // The deadline must have cut the run short while the scheduler was
    // busy building: an approximate snapshot, nowhere near precise.
    EXPECT_EQ(response.status, ServiceStatus::deadlineApprox);
    EXPECT_FALSE(response.reachedPrecise);
    ASSERT_TRUE(probe->out);
    const auto snapshot = probe->out->read();
    ASSERT_TRUE(snapshot);
    EXPECT_LT(*snapshot.value, 1200);

    for (auto &future : slow)
        ASSERT_EQ(future.wait_for(60s), std::future_status::ready);
}

TEST(ServerEdge, SubmitAfterHeavyChurnStillServes)
{
    AnytimeServer server({.workers = 2, .maxQueueDepth = 4});
    // Churn: bursts that alternately saturate and drain the server.
    for (int round = 0; round < 3; ++round) {
        std::vector<std::future<ServiceResponse>> futures;
        for (int i = 0; i < 8; ++i)
            futures.push_back(server.submit(counterRequest(
                "churn" + std::to_string(round * 8 + i), 500, 5, 100ms)));
        for (auto &future : futures)
            ASSERT_EQ(future.wait_for(60s), std::future_status::ready);
    }
    auto final_request = server.submit(counterRequest("final", 64, 2, 10s));
    ASSERT_EQ(final_request.wait_for(10s), std::future_status::ready);
    EXPECT_EQ(final_request.get().status,
              ServiceStatus::preciseCompleted);
}

} // namespace
} // namespace anytime
