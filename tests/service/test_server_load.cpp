/**
 * @file
 * Serving runtime under load: many concurrent requests with mixed
 * deadlines all get valid responses, admission control sheds at
 * saturation instead of hanging, the predictive model sheds requests
 * that could never meet their deadline, and the executor pool recycles
 * its threads across requests.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "service/server.hpp"
#include "service_test_util.hpp"

namespace anytime {
namespace {

using namespace std::chrono_literals;

/** Spin until @p server has @p count running requests (bounded). */
void
awaitRunning(const AnytimeServer &server, std::size_t count)
{
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.runningCount() < count &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(200us);
    ASSERT_GE(server.runningCount(), count);
}

TEST(ServerLoad, MixedDeadlines32ConcurrentAllAnswered)
{
    AnytimeServer server({.workers = 4, .maxQueueDepth = 64});
    const std::chrono::nanoseconds deadlines[] = {2ms, 10ms, 50ms, 2s};

    std::vector<std::future<ServiceResponse>> futures;
    for (int i = 0; i < 36; ++i) {
        // ~20 ms of work each; deadlines from well-under to well-over.
        futures.push_back(server.submit(counterRequest(
            "req" + std::to_string(i), 2000, 10, deadlines[i % 4], 0.0,
            nullptr, /*publish_period=*/50)));
    }

    std::size_t served = 0;
    std::size_t immediate = 0;
    for (auto &future : futures) {
        // Every request resolves — the load test's core assertion.
        ASSERT_EQ(future.wait_for(60s), std::future_status::ready);
        const ServiceResponse response = future.get();
        if (servedStatus(response.status))
            ++served;
        else
            ++immediate;
        if (response.status == ServiceStatus::preciseCompleted) {
            EXPECT_TRUE(response.reachedPrecise);
        }
    }
    EXPECT_EQ(served + immediate, 36u);
    EXPECT_GT(served, 0u);

    server.drain();
    const ServiceMetrics metrics = server.metricsSnapshot();
    EXPECT_EQ(metrics.total(), 36u);
    EXPECT_EQ(metrics.served() + metrics.shed() + metrics.expired() +
                  metrics.failed(),
              36u);
}

TEST(ServerLoad, QueueCapacityShedsExcessLoad)
{
    AnytimeServer server({.workers = 1,
                          .maxQueueDepth = 2,
                          .predictiveShedding = false});
    // Occupy the only worker...
    auto blocker =
        server.submit(counterRequest("blocker", 20000, 10, 5s));
    awaitRunning(server, 1);

    // ...then flood: 2 fit in the queue, the rest must shed.
    std::vector<std::future<ServiceResponse>> futures;
    for (int i = 0; i < 10; ++i)
        futures.push_back(server.submit(
            counterRequest("flood" + std::to_string(i), 64, 2, 5s)));

    std::size_t shed = 0;
    for (auto &future : futures) {
        ASSERT_EQ(future.wait_for(60s), std::future_status::ready);
        if (future.get().status == ServiceStatus::shedQueueFull)
            ++shed;
    }
    EXPECT_GE(shed, 8u);
    ASSERT_EQ(blocker.wait_for(60s), std::future_status::ready);
}

TEST(ServerLoad, PredictiveSheddingRefusesHopelessDeadlines)
{
    AnytimeServer server({.workers = 1, .maxQueueDepth = 64});
    // Teach the EWMA model: one ~50 ms request served to completion.
    auto teacher =
        server.submit(counterRequest("teacher", 5000, 10, 10s));
    ASSERT_EQ(teacher.wait_for(60s), std::future_status::ready);
    ASSERT_EQ(teacher.get().status, ServiceStatus::preciseCompleted);

    // Occupy the worker, then ask for 5 ms turnarounds: the model
    // predicts ~50 ms of queueing, so these can only be shed.
    auto blocker =
        server.submit(counterRequest("blocker", 20000, 10, 5s));
    awaitRunning(server, 1);

    std::vector<std::future<ServiceResponse>> futures;
    for (int i = 0; i < 10; ++i)
        futures.push_back(server.submit(
            counterRequest("tight" + std::to_string(i), 64, 2, 5ms)));

    std::size_t predicted = 0;
    for (auto &future : futures) {
        ASSERT_EQ(future.wait_for(60s), std::future_status::ready);
        if (future.get().status == ServiceStatus::shedPredictedMiss)
            ++predicted;
    }
    EXPECT_GE(predicted, 1u);
    ASSERT_EQ(blocker.wait_for(60s), std::future_status::ready);
}

TEST(ServerLoad, ExecutorPoolRecyclesThreadsAcrossRequests)
{
    AnytimeServer server({.workers = 2});
    for (int i = 0; i < 8; ++i) {
        auto future = server.submit(
            counterRequest("seq" + std::to_string(i), 64, 2, 10s));
        ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
        EXPECT_EQ(future.get().status, ServiceStatus::preciseCompleted);
    }
    // 8 automaton runs were multiplexed over 2 pooled threads: many
    // more tasks completed than threads exist, and no run spawned its
    // own thread. The response is fulfilled from inside the pool task,
    // so the last task's completion bookkeeping can trail briefly.
    EXPECT_EQ(server.pool().size(), 2u);
    const auto give_up = std::chrono::steady_clock::now() + 10s;
    while (server.pool().tasksCompleted() < 8u &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    EXPECT_GE(server.pool().tasksCompleted(), 8u);
}

} // namespace
} // namespace anytime
