/**
 * @file
 * ServiceMetrics accounting tests: every terminal status lands in
 * exactly one bucket (total == served + shed + expired + failed +
 * cancelled), latency percentiles keep their contract on the bounded
 * histogram (p=0 / p=100 / single sample exact, out-of-range fatal),
 * and the summary table carries the cancelled column.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "service/metrics.hpp"
#include "support/error.hpp"

namespace anytime {
namespace {

ServiceResponse
response(ServiceStatus status, double total_seconds = 0.01,
         bool deadline_met = true)
{
    ServiceResponse r;
    r.status = status;
    r.totalSeconds = total_seconds;
    r.deadlineMet = deadline_met;
    r.quality = servedStatus(status) ? 0.5 : 0.0;
    return r;
}

TEST(ServiceMetrics, EveryStatusLandsInExactlyOneBucket)
{
    ServiceMetrics metrics;
    metrics.record(response(ServiceStatus::preciseCompleted));
    metrics.record(response(ServiceStatus::deadlineApprox));
    metrics.record(response(ServiceStatus::qualityStopped));
    metrics.record(response(ServiceStatus::shedQueueFull, 0.0, false));
    metrics.record(
        response(ServiceStatus::shedPredictedMiss, 0.0, false));
    metrics.record(response(ServiceStatus::expired, 0.0, false));
    metrics.record(response(ServiceStatus::failed, 0.0, false));
    metrics.record(response(ServiceStatus::cancelled, 0.0, false));

    EXPECT_EQ(metrics.total(), 8u);
    EXPECT_EQ(metrics.served(), 3u);
    EXPECT_EQ(metrics.precise(), 1u);
    EXPECT_EQ(metrics.shed(), 2u);
    EXPECT_EQ(metrics.expired(), 1u);
    EXPECT_EQ(metrics.failed(), 1u);
    EXPECT_EQ(metrics.cancelled(), 1u);
    // The accounting invariant the table reports.
    EXPECT_EQ(metrics.total(), metrics.served() + metrics.shed() +
                                   metrics.expired() + metrics.failed() +
                                   metrics.cancelled());
    // Only served responses contribute latency samples.
    EXPECT_EQ(metrics.latencies().count(), metrics.served());
}

TEST(ServiceMetrics, CancelledDoesNotDisappearFromTotals)
{
    ServiceMetrics metrics;
    metrics.record(response(ServiceStatus::cancelled, 0.0, false));
    metrics.record(response(ServiceStatus::cancelled, 0.0, false));
    EXPECT_EQ(metrics.total(), 2u);
    EXPECT_EQ(metrics.cancelled(), 2u);
    EXPECT_EQ(metrics.served(), 0u);
    EXPECT_DOUBLE_EQ(metrics.hitRate(), 0.0);
}

TEST(ServiceMetrics, LatencyPercentileEdgeCases)
{
    ServiceMetrics metrics;
    // Empty: all percentiles answer 0.
    EXPECT_DOUBLE_EQ(metrics.latencyPercentile(0), 0.0);
    EXPECT_DOUBLE_EQ(metrics.latencyPercentile(50), 0.0);
    EXPECT_DOUBLE_EQ(metrics.latencyPercentile(100), 0.0);

    // Single sample: every percentile is that sample, exactly.
    metrics.record(response(ServiceStatus::deadlineApprox, 0.0123));
    EXPECT_DOUBLE_EQ(metrics.latencyPercentile(0), 0.0123);
    EXPECT_DOUBLE_EQ(metrics.latencyPercentile(50), 0.0123);
    EXPECT_DOUBLE_EQ(metrics.latencyPercentile(100), 0.0123);

    // More samples: p=0 and p=100 stay exact min/max.
    metrics.record(response(ServiceStatus::preciseCompleted, 0.0017));
    metrics.record(response(ServiceStatus::qualityStopped, 0.44));
    EXPECT_DOUBLE_EQ(metrics.latencyPercentile(0), 0.0017);
    EXPECT_DOUBLE_EQ(metrics.latencyPercentile(100), 0.44);
    const double p50 = metrics.latencyPercentile(50);
    EXPECT_GE(p50, 0.0017);
    EXPECT_LE(p50, 0.44);
}

TEST(ServiceMetrics, OutOfRangePercentileIsFatal)
{
    ServiceMetrics metrics;
    metrics.record(response(ServiceStatus::preciseCompleted));
    EXPECT_THROW(metrics.latencyPercentile(-1.0), FatalError);
    EXPECT_THROW(metrics.latencyPercentile(100.5), FatalError);
}

TEST(ServiceMetrics, TableCarriesCancelledColumn)
{
    ServiceMetrics metrics;
    metrics.record(response(ServiceStatus::preciseCompleted));
    metrics.record(response(ServiceStatus::cancelled, 0.0, false));

    const SeriesTable table = metrics.table("test");
    const auto column = std::find(table.columns.begin(),
                                  table.columns.end(), "cancelled");
    ASSERT_NE(column, table.columns.end());
    const auto index = static_cast<std::size_t>(
        column - table.columns.begin());
    ASSERT_EQ(table.rows.size(), 1u);
    ASSERT_LT(index, table.rows[0].size());
    EXPECT_EQ(table.rows[0][index], "1");
}

TEST(ServiceMetrics, SnapshotIsCopyable)
{
    ServiceMetrics metrics;
    metrics.record(response(ServiceStatus::preciseCompleted, 0.020));
    const ServiceMetrics copy = metrics;
    metrics.record(response(ServiceStatus::preciseCompleted, 0.030));
    EXPECT_EQ(copy.total(), 1u);
    EXPECT_EQ(metrics.total(), 2u);
    EXPECT_DOUBLE_EQ(copy.latencyPercentile(100), 0.020);
}

} // namespace
} // namespace anytime
