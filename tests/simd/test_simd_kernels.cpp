/**
 * @file
 * Scalar-vs-vector bit-identity fuzz for the src/simd/ dispatch layer.
 *
 * Every kernel in simd::Ops is a *specification*; each vector backend
 * the host supports must reproduce the scalar backend bit for bit —
 * float kernels included (the spec fixes lane layout, FMA, and the
 * pairwise reduction). Sizes deliberately include non-multiples of the
 * vector width so backend tail handling is exercised, and integer
 * inputs include the extremes so wraparound paths are hit.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <random>
#include <vector>

#include "apps/conv2d.hpp"
#include "apps/kmeans.hpp"
#include "approx/fixed_point.hpp"
#include "image/generate.hpp"
#include "simd/simd.hpp"
#include "support/error.hpp"

namespace anytime {
namespace {

using simd::Isa;

/** Every vector ISA this host/build can run (may be empty). */
std::vector<Isa>
vectorIsas()
{
    std::vector<Isa> isas;
    for (const Isa isa : {Isa::sse2, Isa::avx2, Isa::neon}) {
        if (simd::isaSupported(isa))
            isas.push_back(isa);
    }
    return isas;
}

/** Restore automatic dispatch when a test forces ISAs. */
struct IsaGuard
{
    ~IsaGuard() { simd::resetIsa(); }
};

TEST(SimdDispatch, ScalarAlwaysSupported)
{
    EXPECT_TRUE(simd::isaSupported(Isa::scalar));
    EXPECT_TRUE(simd::isaSupported(simd::bestSupportedIsa()));
    EXPECT_TRUE(simd::isaSupported(simd::activeIsa()));
}

TEST(SimdDispatch, ForceAndResetChangeActiveIsa)
{
    IsaGuard guard;
    simd::forceIsa(Isa::scalar);
    EXPECT_EQ(simd::activeIsa(), Isa::scalar);
    simd::resetIsa();
    EXPECT_EQ(simd::activeIsa(), simd::bestSupportedIsa());
}

TEST(SimdDispatch, ForceUnsupportedIsaIsFatal)
{
    for (const Isa isa : {Isa::sse2, Isa::avx2, Isa::neon}) {
        if (!simd::isaSupported(isa))
            EXPECT_THROW(simd::forceIsa(isa), FatalError)
                << simd::isaName(isa);
    }
}

TEST(SimdDispatch, EnvironmentOverrideForcesScalar)
{
    IsaGuard guard;
    ASSERT_EQ(setenv("ANYTIME_SIMD", "scalar", 1), 0);
    simd::resetIsa();
    EXPECT_EQ(simd::activeIsa(), Isa::scalar);
    ASSERT_EQ(setenv("ANYTIME_SIMD", "bogus-isa", 1), 0);
    simd::resetIsa();
    EXPECT_THROW(simd::activeIsa(), FatalError);
    unsetenv("ANYTIME_SIMD");
}

TEST(SimdDispatch, IsaNamesAreStable)
{
    EXPECT_STREQ(simd::isaName(Isa::scalar), "scalar");
    EXPECT_STREQ(simd::isaName(Isa::sse2), "sse2");
    EXPECT_STREQ(simd::isaName(Isa::avx2), "avx2");
    EXPECT_STREQ(simd::isaName(Isa::neon), "neon");
}

TEST(SimdKernels, DotPadded8BitIdentical)
{
    const auto &scalar = simd::opsFor(Isa::scalar);
    std::mt19937 rng(20260808);
    std::uniform_real_distribution<float> tap_dist(-2.0f, 2.0f);
    std::uniform_real_distribution<float> val_dist(0.0f, 255.0f);
    for (const Isa isa : vectorIsas()) {
        const auto &vec = simd::opsFor(isa);
        for (int round = 0; round < 200; ++round) {
            const std::size_t n = 8 * (1 + rng() % 16);
            std::vector<float> taps(n), vals(n);
            for (std::size_t i = 0; i < n; ++i) {
                taps[i] = tap_dist(rng);
                vals[i] = val_dist(rng);
            }
            const float a = scalar.dotPadded8(taps.data(), vals.data(), n);
            const float b = vec.dotPadded8(taps.data(), vals.data(), n);
            ASSERT_EQ(std::bit_cast<std::uint32_t>(a),
                      std::bit_cast<std::uint32_t>(b))
                << simd::isaName(isa) << " n=" << n;
        }
    }
}

TEST(SimdKernels, ConvDotU8BitIdentical)
{
    const auto &scalar = simd::opsFor(Isa::scalar);
    std::mt19937 rng(987654321);
    std::uniform_real_distribution<float> tap_dist(-1.0f, 1.0f);
    for (const Isa isa : vectorIsas()) {
        const auto &vec = simd::opsFor(isa);
        for (int round = 0; round < 100; ++round) {
            const std::size_t rows = 1 + rng() % 9;
            const std::size_t lanes = 8 * (1 + rng() % 3);
            const std::size_t stride = lanes + rng() % 13;
            std::vector<std::uint8_t> image(rows * stride);
            for (auto &byte : image)
                byte = static_cast<std::uint8_t>(rng());
            std::vector<float> taps(rows * lanes);
            for (auto &tap : taps)
                tap = tap_dist(rng);
            const float a = scalar.convDotU8(image.data(), stride, rows,
                                             lanes, taps.data());
            const float b = vec.convDotU8(image.data(), stride, rows,
                                          lanes, taps.data());
            ASSERT_EQ(std::bit_cast<std::uint32_t>(a),
                      std::bit_cast<std::uint32_t>(b))
                << simd::isaName(isa) << " rows=" << rows
                << " lanes=" << lanes;
        }
    }
}

TEST(SimdKernels, MaskedSumI32TailsAndExtremes)
{
    const auto &scalar = simd::opsFor(Isa::scalar);
    std::mt19937 rng(13);
    for (const Isa isa : vectorIsas()) {
        const auto &vec = simd::opsFor(isa);
        for (int round = 0; round < 100; ++round) {
            const std::size_t n = 1 + rng() % 67; // every tail shape
            std::vector<std::int32_t> values(n);
            std::vector<std::uint32_t> selectors(n);
            for (std::size_t i = 0; i < n; ++i) {
                values[i] = static_cast<std::int32_t>(rng());
                selectors[i] = rng();
            }
            values[rng() % n] = std::numeric_limits<std::int32_t>::min();
            values[rng() % n] = std::numeric_limits<std::int32_t>::max();
            for (unsigned bit = 0; bit < 32; ++bit) {
                ASSERT_EQ(scalar.maskedSumI32(values.data(),
                                              selectors.data(), n, bit),
                          vec.maskedSumI32(values.data(),
                                           selectors.data(), n, bit))
                    << simd::isaName(isa) << " n=" << n << " bit=" << bit;
            }
        }
    }
}

TEST(SimdKernels, MaskedAddI64TailsAndExtremes)
{
    const auto &scalar = simd::opsFor(Isa::scalar);
    std::mt19937_64 rng(1234577);
    for (const Isa isa : vectorIsas()) {
        const auto &vec = simd::opsFor(isa);
        for (int round = 0; round < 100; ++round) {
            const std::size_t n = 1 + rng() % 37;
            std::vector<std::int64_t> acc_a(n), acc_b(n);
            std::vector<std::int32_t> selectors(n);
            for (std::size_t i = 0; i < n; ++i) {
                acc_a[i] = static_cast<std::int64_t>(rng());
                acc_b[i] = acc_a[i];
                selectors[i] = static_cast<std::int32_t>(rng());
            }
            const auto addend = static_cast<std::int64_t>(rng());
            for (unsigned bit = 0; bit < 32; ++bit) {
                scalar.maskedAddI64(acc_a.data(), selectors.data(), n,
                                    bit, addend);
                vec.maskedAddI64(acc_b.data(), selectors.data(), n, bit,
                                 addend);
            }
            ASSERT_EQ(acc_a, acc_b) << simd::isaName(isa) << " n=" << n;
        }
    }
}

TEST(SimdKernels, SquaredDistancesRgbBitIdentical)
{
    const auto &scalar = simd::opsFor(Isa::scalar);
    std::mt19937 rng(777);
    for (const Isa isa : vectorIsas()) {
        const auto &vec = simd::opsFor(isa);
        for (int round = 0; round < 100; ++round) {
            const std::size_t n = 8 * (1 + rng() % 8);
            std::vector<std::int32_t> cr(n), cg(n), cb(n);
            std::vector<std::int32_t> out_a(n), out_b(n);
            for (std::size_t i = 0; i < n; ++i) {
                cr[i] = static_cast<std::int32_t>(rng() % 256);
                cg[i] = static_cast<std::int32_t>(rng() % 256);
                cb[i] = static_cast<std::int32_t>(rng() % 256);
            }
            const auto pr = static_cast<std::int32_t>(rng() % 256);
            const auto pg = static_cast<std::int32_t>(rng() % 256);
            const auto pb = static_cast<std::int32_t>(rng() % 256);
            scalar.squaredDistancesRgb(cr.data(), cg.data(), cb.data(),
                                       n, pr, pg, pb, out_a.data());
            vec.squaredDistancesRgb(cr.data(), cg.data(), cb.data(), n,
                                    pr, pg, pb, out_b.data());
            ASSERT_EQ(out_a, out_b) << simd::isaName(isa) << " n=" << n;
        }
    }
}

TEST(SimdKernels, DwtLiftingKernelsBitIdentical)
{
    const auto &scalar = simd::opsFor(Isa::scalar);
    std::mt19937 rng(4242);
    const std::size_t sizes[] = {2,  3,  4,  5,  7,  8,  9,  15, 16,
                                 17, 31, 32, 33, 63, 64, 65, 100, 101};
    for (const Isa isa : vectorIsas()) {
        const auto &vec = simd::opsFor(isa);
        for (const std::size_t n : sizes) {
            const std::size_t n_high = n / 2;
            const std::size_t n_low = n - n_high;
            std::vector<std::int32_t> x(n);
            for (auto &v : x)
                v = static_cast<std::int32_t>(rng() % 2048) - 1024;

            std::vector<std::int32_t> high_a(n_high), high_b(n_high);
            scalar.dwtPredict53(x.data(), n, high_a.data());
            vec.dwtPredict53(x.data(), n, high_b.data());
            ASSERT_EQ(high_a, high_b)
                << simd::isaName(isa) << " predict n=" << n;

            std::vector<std::int32_t> low_a(n_low), low_b(n_low);
            scalar.dwtUpdate53(x.data(), high_a.data(), n, low_a.data());
            vec.dwtUpdate53(x.data(), high_a.data(), n, low_b.data());
            ASSERT_EQ(low_a, low_b)
                << simd::isaName(isa) << " update n=" << n;

            // Inverse kernels run on the deinterleaved (low | high) line.
            std::vector<std::int32_t> line(n);
            std::copy(low_a.begin(), low_a.end(), line.begin());
            std::copy(high_a.begin(), high_a.end(),
                      line.begin() + static_cast<std::ptrdiff_t>(n_low));
            std::vector<std::int32_t> even_a(n_low), even_b(n_low);
            scalar.dwtRecoverEven53(line.data(), n, even_a.data());
            vec.dwtRecoverEven53(line.data(), n, even_b.data());
            ASSERT_EQ(even_a, even_b)
                << simd::isaName(isa) << " recover n=" << n;

            std::vector<std::int32_t> out_a(n), out_b(n);
            scalar.dwtInterleave53(even_a.data(),
                                   line.data() +
                                       static_cast<std::ptrdiff_t>(n_low),
                                   n, out_a.data());
            vec.dwtInterleave53(even_a.data(),
                                line.data() +
                                    static_cast<std::ptrdiff_t>(n_low),
                                n, out_b.data());
            ASSERT_EQ(out_a, out_b)
                << simd::isaName(isa) << " interleave n=" << n;
            // And the lifting round-trips: the inverse pair recovers x.
            ASSERT_EQ(out_a, x) << "roundtrip n=" << n;
        }
    }
}

TEST(SimdKernels, ApplyLutU8BitIdentical)
{
    const auto &scalar = simd::opsFor(Isa::scalar);
    std::mt19937 rng(31337);
    std::array<std::uint8_t, 256> lut;
    for (auto &v : lut)
        v = static_cast<std::uint8_t>(rng());
    for (const Isa isa : vectorIsas()) {
        const auto &vec = simd::opsFor(isa);
        for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                                    std::size_t{64}, std::size_t{1001}}) {
            std::vector<std::uint8_t> src(n), out_a(n), out_b(n);
            for (auto &byte : src)
                byte = static_cast<std::uint8_t>(rng());
            scalar.applyLutU8(src.data(), n, lut.data(), out_a.data());
            vec.applyLutU8(src.data(), n, lut.data(), out_b.data());
            ASSERT_EQ(out_a, out_b) << simd::isaName(isa) << " n=" << n;
        }
    }
}

TEST(SimdKernels, Histogram256MatchesNaiveCount)
{
    std::mt19937 rng(5150);
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{3}, std::size_t{4},
                                std::size_t{1023}, std::size_t{4096}}) {
        std::vector<std::uint8_t> src(n);
        for (auto &byte : src)
            byte = static_cast<std::uint8_t>(rng());
        std::uint64_t expected[256] = {};
        for (const std::uint8_t byte : src)
            ++expected[byte];
        std::uint64_t bins[256] = {};
        simd::histogram256(src.data(), n, bins);
        for (int v = 0; v < 256; ++v)
            ASSERT_EQ(bins[v], expected[v]) << "bin " << v << " n=" << n;
    }
}

TEST(SimdKernels, ConvolveIdenticalAcrossIsas)
{
    IsaGuard guard;
    const GrayImage scene = generateScene(37, 23, 3);
    for (const Kernel &kernel :
         {Kernel::boxBlur(1), Kernel::gaussianBlur(2), Kernel::sharpen3x3(),
          Kernel::gaussianBlur(4)}) {
        simd::forceIsa(Isa::scalar);
        const GrayImage reference = convolve(scene, kernel);
        for (const Isa isa : vectorIsas()) {
            simd::forceIsa(isa);
            const GrayImage vec = convolve(scene, kernel);
            EXPECT_TRUE(vec == reference)
                << simd::isaName(isa) << " radius " << kernel.radius();
        }
    }
}

/**
 * The QuantizedKernel digit-elision path must equal the plain masked
 * bit-plane sum it documents: qtap = round(tap * 2^16) clamped, acc =
 * sum(qtap_i * quantized pixel_i), rounded Q16.16 to a byte. Elision
 * (OR-mask skips, early exit) must never change the output — on any
 * ISA.
 */
TEST(SimdKernels, QuantizedKernelElisionIsInvisible)
{
    IsaGuard guard;
    const GrayImage scene = generateScene(29, 31, 9);
    const Kernel kernel = Kernel::gaussianBlur(2);
    const QuantizedKernel quantized(kernel);
    const int r = static_cast<int>(kernel.radius());

    std::vector<Isa> isas = {Isa::scalar};
    for (const Isa isa : vectorIsas())
        isas.push_back(isa);

    for (unsigned bits = 1; bits <= 8; ++bits) {
        for (std::size_t y = 0; y < scene.height(); y += 3) {
            for (std::size_t x = 0; x < scene.width(); x += 3) {
                // Reference: naive integer plane-free evaluation.
                std::int64_t acc = 0;
                for (int dy = -r; dy <= r; ++dy) {
                    for (int dx = -r; dx <= r; ++dx) {
                        const double scaled = std::round(
                            static_cast<double>(kernel.tap(dx, dy)) *
                            65536.0);
                        const auto qtap = static_cast<std::int64_t>(
                            std::min(std::max(scaled, -16777216.0),
                                     16777216.0));
                        const std::uint8_t pixel = quantizePixel(
                            scene.clampedAt(
                                static_cast<std::ptrdiff_t>(x) + dx,
                                static_cast<std::ptrdiff_t>(y) + dy),
                            bits);
                        acc += qtap * pixel;
                    }
                }
                std::uint8_t expected = 0;
                if (acc > 0) {
                    const std::int64_t v = (acc + 32768) >> 16;
                    expected = v >= 255
                                   ? 255
                                   : static_cast<std::uint8_t>(v);
                }
                for (const Isa isa : isas) {
                    simd::forceIsa(isa);
                    ASSERT_EQ(quantized.convolvePixel(scene, x, y, bits),
                              expected)
                        << simd::isaName(isa) << " bits=" << bits
                        << " (" << x << "," << y << ")";
                }
            }
        }
    }
}

TEST(SimdKernels, BitPlaneDotProductIdenticalAcrossIsas)
{
    IsaGuard guard;
    std::mt19937 rng(90210);
    for (int round = 0; round < 20; ++round) {
        const std::size_t n = 1 + rng() % 50;
        std::vector<std::int32_t> inputs(n), weights(n);
        for (std::size_t i = 0; i < n; ++i) {
            inputs[i] = static_cast<std::int32_t>(rng());
            // Sparse planes so the OR-mask elision actually fires.
            weights[i] = static_cast<std::int32_t>(rng() & rng() & rng());
        }
        simd::forceIsa(Isa::scalar);
        std::vector<std::int64_t> reference;
        {
            BitPlaneDotProduct dot(inputs, weights);
            while (!dot.precise())
                reference.push_back(dot.step());
        }
        for (const Isa isa : vectorIsas()) {
            simd::forceIsa(isa);
            BitPlaneDotProduct dot(inputs, weights);
            for (std::size_t k = 0; !dot.precise(); ++k)
                ASSERT_EQ(dot.step(), reference[k])
                    << simd::isaName(isa) << " plane " << k;
        }
    }
}

TEST(SimdKernels, NearestCentroidMatchesCentroidIndex)
{
    IsaGuard guard;
    std::mt19937 rng(60606);
    for (const std::size_t k : {std::size_t{1}, std::size_t{3},
                                std::size_t{8}, std::size_t{11},
                                std::size_t{25}}) {
        std::vector<RgbPixel> centroids(k);
        for (auto &c : centroids)
            c = RgbPixel{static_cast<std::uint8_t>(rng()),
                         static_cast<std::uint8_t>(rng()),
                         static_cast<std::uint8_t>(rng())};
        // Duplicate a centroid so the first-wins tie-break is exercised.
        if (k > 2)
            centroids[k - 1] = centroids[0];
        const CentroidIndex index(centroids);
        std::vector<Isa> isas = {Isa::scalar};
        for (const Isa isa : vectorIsas())
            isas.push_back(isa);
        for (int round = 0; round < 100; ++round) {
            const RgbPixel pixel{static_cast<std::uint8_t>(rng()),
                                 static_cast<std::uint8_t>(rng()),
                                 static_cast<std::uint8_t>(rng())};
            const unsigned expected = nearestCentroid(centroids, pixel);
            for (const Isa isa : isas) {
                simd::forceIsa(isa);
                ASSERT_EQ(index.nearest(pixel), expected)
                    << simd::isaName(isa) << " k=" << k;
            }
        }
    }
}

} // namespace
} // namespace anytime
