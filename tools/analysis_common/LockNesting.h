//===--- LockNesting.h ------------------------------------------*- C++ -*-===//
//
// Shared lexical lock-nesting scanner over one function body, used by
// both static-analysis front-ends in this repo:
//
//  - tools/anytime_lint (anytime-lock-order-hint): per-TU clang-tidy
//    check flagging ordering-ambiguous nestings (two locks of the same
//    mutex class, or the same mutex twice);
//  - tools/anytime_verify (lock-order pass): whole-program analyzer
//    that aggregates the nesting edges of every TU into one global
//    acquisition graph and fails on cycles.
//
// The scanner tracks `anytime::MutexLock` scoped-lock variables (the
// only sanctioned way to lock an `anytime::Mutex` — enforced by
// -Wthread-safety) through one function body:
//
//  - a MutexLock declaration acquires; the end of its enclosing
//    CompoundStmt releases (std::unique_lock destructor semantics);
//  - manual `lock.unlock()` / `lock.lock()` calls deactivate and
//    reactivate the tracked lock (the drop-around-slow-work pattern in
//    service/server.cpp);
//  - LambdaExpr bodies are NOT entered: a lambda executes later, on
//    some other stack, so a lock acquired inside a callback is not
//    nested under the lock held at the capture site. Each lambda's
//    operator() is scanned as its own function.
//
// Mutex identity is a stable string key: `Class::member` for member
// mutexes (template instantiations collapse onto the templated class,
// so VersionedBuffer<int>::mutex and VersionedBuffer<Image>::mutex are
// one graph node), `function::name` for locals and parameters.
//
//===----------------------------------------------------------------------===//

#ifndef ANYTIME_ANALYSIS_COMMON_LOCK_NESTING_H
#define ANYTIME_ANALYSIS_COMMON_LOCK_NESTING_H

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/Stmt.h"
#include "clang/Basic/SourceLocation.h"
#include "llvm/Support/Casting.h"

namespace anytime_analysis {

/// One tracked MutexLock variable within the function being scanned.
struct ActiveLock {
  const clang::VarDecl *var = nullptr;
  /// Class-level identity of the locked mutex ("Class::member" or
  /// "function::local") — the node name in the global lock graph.
  /// Every instance of a class collapses onto one key.
  std::string mutexKey;
  /// Qualified name of the record owning the mutex member; empty for
  /// locals/parameters/unrecognized expressions.
  std::string mutexClass;
  /// Instance-level identity when the base object is syntactically
  /// resolvable ("this->Class::member", "arg->Class::member",
  /// "function::local"); empty when the instance is unknown. Two
  /// ActiveLocks with equal non-empty instanceKey are the same mutex
  /// object (a re-acquire); equal mutexKey but different instanceKey
  /// is two instances of one class.
  std::string instanceKey;
  clang::SourceLocation loc;
  bool active = true;
};

/// Qualified record name with template instantiations collapsed onto
/// the templated class (VersionedBuffer<int> -> anytime::VersionedBuffer).
inline std::string lockRecordName(const clang::CXXRecordDecl *record) {
  if (const auto *spec =
          llvm::dyn_cast<clang::ClassTemplateSpecializationDecl>(record))
    return spec->getSpecializedTemplate()->getQualifiedNameAsString();
  return record->getQualifiedNameAsString();
}

inline const clang::CXXRecordDecl *lockAsRecord(clang::QualType type) {
  if (type.isNull())
    return nullptr;
  return type.getNonReferenceType()->getAsCXXRecordDecl();
}

inline bool isMutexLockType(clang::QualType type) {
  const clang::CXXRecordDecl *record = lockAsRecord(type);
  return record != nullptr &&
         lockRecordName(record) == "anytime::MutexLock";
}

/// Lexical scanner for MutexLock acquisitions in one function body.
class LockNestingScanner {
public:
  /// Called when `incoming` is acquired while `held` is active.
  using NestedFn =
      std::function<void(const ActiveLock &held, const ActiveLock &incoming)>;
  /// Called for every MutexLock acquisition, nested or not.
  using AcquireFn = std::function<void(const ActiveLock &acquired)>;
  /// Called for every resolved call made while >=1 lock is active.
  using CallWithHeldFn = std::function<void(
      const std::vector<ActiveLock> &held, const clang::FunctionDecl *callee,
      clang::SourceLocation loc)>;

  void scan(const clang::FunctionDecl *function, NestedFn onNested,
            AcquireFn onAcquire = nullptr,
            CallWithHeldFn onCallWithHeld = nullptr) {
    if (function == nullptr || !function->hasBody())
      return;
    enclosing = function;
    nested = std::move(onNested);
    acquire = std::move(onAcquire);
    callWithHeld = std::move(onCallWithHeld);
    stack.clear();
    walk(function->getBody());
  }

private:
  /// Fill in the identity of the mutex expression passed to a
  /// MutexLock constructor.
  void mutexIdentity(const clang::Expr *expr, ActiveLock &lock) const {
    const clang::Expr *stripped = expr->IgnoreParenImpCasts();
    if (const auto *member = llvm::dyn_cast<clang::MemberExpr>(stripped)) {
      const clang::ValueDecl *field = member->getMemberDecl();
      std::string owner;
      if (const auto *record =
              llvm::dyn_cast<clang::CXXRecordDecl>(field->getDeclContext()))
        owner = lockRecordName(record);
      lock.mutexClass = owner;
      lock.mutexKey = owner.empty()
                          ? field->getNameAsString()
                          : owner + "::" + field->getNameAsString();
      const clang::Expr *base = member->getBase()->IgnoreParenImpCasts();
      if (llvm::isa<clang::CXXThisExpr>(base))
        lock.instanceKey = "this->" + lock.mutexKey;
      else if (const auto *baseRef =
                   llvm::dyn_cast<clang::DeclRefExpr>(base))
        lock.instanceKey =
            baseRef->getDecl()->getNameAsString() + "->" + lock.mutexKey;
      return;
    }
    if (const auto *ref = llvm::dyn_cast<clang::DeclRefExpr>(stripped)) {
      const clang::ValueDecl *decl = ref->getDecl();
      const auto *var = llvm::dyn_cast<clang::VarDecl>(decl);
      if (var != nullptr && var->isLocalVarDeclOrParm() &&
          enclosing != nullptr)
        lock.mutexKey = enclosing->getQualifiedNameAsString() +
                        "::" + decl->getNameAsString();
      else
        lock.mutexKey = decl->getQualifiedNameAsString();
      lock.instanceKey = lock.mutexKey;
      return;
    }
    lock.mutexKey = "<expr>";
  }

  void handleVar(const clang::VarDecl *var) {
    if (!isMutexLockType(var->getType())) {
      if (var->hasInit())
        walk(var->getInit());
      return;
    }
    const clang::Expr *init = var->hasInit() ? var->getInit() : nullptr;
    const clang::CXXConstructExpr *construct =
        init != nullptr
            ? llvm::dyn_cast<clang::CXXConstructExpr>(init->IgnoreImplicit())
            : nullptr;
    if (construct == nullptr || construct->getNumArgs() < 1)
      return;
    ActiveLock lock;
    lock.var = var;
    lock.loc = var->getBeginLoc();
    mutexIdentity(construct->getArg(0), lock);
    fireNested(lock);
    stack.push_back(lock);
    if (acquire)
      acquire(stack.back());
  }

  void fireNested(const ActiveLock &incoming) const {
    if (!nested)
      return;
    for (const ActiveLock &held : stack) {
      if (held.active && held.var != incoming.var)
        nested(held, incoming);
    }
  }

  /// True when the call was a tracked lock's lock()/unlock().
  bool handleLockMemberCall(const clang::CXXMemberCallExpr *call) {
    const clang::CXXMethodDecl *method = call->getMethodDecl();
    const clang::Expr *object = call->getImplicitObjectArgument();
    if (method == nullptr || object == nullptr)
      return false;
    const auto *ref =
        llvm::dyn_cast<clang::DeclRefExpr>(object->IgnoreParenImpCasts());
    if (ref == nullptr)
      return false;
    for (ActiveLock &held : stack) {
      if (held.var != ref->getDecl())
        continue;
      if (method->getNameAsString() == "unlock") {
        held.active = false;
        return true;
      }
      if (method->getNameAsString() == "lock") {
        held.active = true;
        held.loc = call->getBeginLoc();
        fireNested(held);
        return true;
      }
      return false;
    }
    return false;
  }

  void noteCall(const clang::FunctionDecl *callee,
                clang::SourceLocation loc) const {
    if (!callWithHeld || callee == nullptr)
      return;
    std::vector<ActiveLock> held;
    for (const ActiveLock &lock : stack)
      if (lock.active)
        held.push_back(lock);
    if (!held.empty())
      callWithHeld(held, callee, loc);
  }

  void walk(const clang::Stmt *stmt) {
    if (stmt == nullptr)
      return;
    // A lambda body runs later on some other stack; locks taken there
    // are not nested under locks held at the capture site.
    if (llvm::isa<clang::LambdaExpr>(stmt))
      return;
    if (const auto *compound = llvm::dyn_cast<clang::CompoundStmt>(stmt)) {
      const std::size_t mark = stack.size();
      for (const clang::Stmt *child : compound->body())
        walk(child);
      stack.resize(mark);
      return;
    }
    if (const auto *declStmt = llvm::dyn_cast<clang::DeclStmt>(stmt)) {
      for (const clang::Decl *decl : declStmt->decls())
        if (const auto *var = llvm::dyn_cast<clang::VarDecl>(decl))
          handleVar(var);
      return;
    }
    if (const auto *memberCall =
            llvm::dyn_cast<clang::CXXMemberCallExpr>(stmt)) {
      if (handleLockMemberCall(memberCall))
        return;
      noteCall(memberCall->getDirectCallee(), memberCall->getBeginLoc());
      for (const clang::Stmt *child : memberCall->children())
        walk(child);
      return;
    }
    if (const auto *call = llvm::dyn_cast<clang::CallExpr>(stmt)) {
      noteCall(call->getDirectCallee(), call->getBeginLoc());
      for (const clang::Stmt *child : call->children())
        walk(child);
      return;
    }
    if (const auto *construct =
            llvm::dyn_cast<clang::CXXConstructExpr>(stmt)) {
      noteCall(construct->getConstructor(), construct->getBeginLoc());
      for (const clang::Stmt *child : construct->children())
        walk(child);
      return;
    }
    for (const clang::Stmt *child : stmt->children())
      walk(child);
  }

  const clang::FunctionDecl *enclosing = nullptr;
  NestedFn nested;
  AcquireFn acquire;
  CallWithHeldFn callWithHeld;
  std::vector<ActiveLock> stack;
};

} // namespace anytime_analysis

#endif // ANYTIME_ANALYSIS_COMMON_LOCK_NESTING_H
