#!/usr/bin/env python3
"""Sanity-check the static-analysis wiring without needing clang.

Runs on every platform (ctest label ``lint``) so a toolchain without
clang-tidy still catches configuration drift: every custom check must
be registered in the tidy module, listed in .clang-tidy, and covered
by a positive and a negative fixture.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

CHECKS = {
    "anytime-no-wallclock-in-stage-body": "wallclock",
    "anytime-publish-discipline": "publish",
    "anytime-narrow-accumulator": "narrow",
    "anytime-lock-order-hint": "lockhint",
    "anytime-unordered-iteration-in-merge": "unordered",
    "anytime-raw-float-in-kernel": "rawfloat",
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root", required=True, type=Path)
    args = parser.parse_args()
    root = args.repo_root
    failures = []

    clang_tidy_config = root / ".clang-tidy"
    if clang_tidy_config.is_file():
        config_text = clang_tidy_config.read_text()
        if "anytime-" not in config_text:
            failures.append(".clang-tidy does not enable the anytime-* checks")
        for check in CHECKS:
            if check not in config_text:
                failures.append(
                    f"{check} is missing from .clang-tidy WarningsAsErrors"
                )
    else:
        failures.append(".clang-tidy missing at repo root")

    module = root / "tools/anytime_lint/src/AnytimeTidyModule.cpp"
    module_text = module.read_text() if module.is_file() else ""
    fixture_dir = root / "tools/anytime_lint/fixtures"
    for check, stem in CHECKS.items():
        if f'"{check}"' not in module_text:
            failures.append(f"{check} is not registered in {module.name}")
        for kind in ("positive", "negative"):
            fixture = fixture_dir / f"{stem}_{kind}.cpp"
            if not fixture.is_file():
                failures.append(f"missing fixture {fixture.name} for {check}")
                continue
            has_markers = "// expect-warning" in fixture.read_text()
            if kind == "positive" and not has_markers:
                failures.append(
                    f"{fixture.name} has no // expect-warning markers"
                )
            if kind == "negative" and has_markers:
                failures.append(
                    f"{fixture.name} is a negative fixture but has markers"
                )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"PASS: {len(CHECKS)} checks wired with fixtures and config")
    return 0


if __name__ == "__main__":
    sys.exit(main())
