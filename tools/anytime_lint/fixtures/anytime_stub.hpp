// Minimal stand-ins for the anytime types the checks key on. The
// checks match fully qualified names (::anytime::Stage,
// ::anytime::Snapshot, ::anytime::runPartitionedSweep), so fixtures
// only need declarations shaped like the real ones — keeping fixture
// compilation hermetic and fast (no repo include paths, no libstdc++
// concurrency headers).

#ifndef ANYTIME_LINT_FIXTURES_ANYTIME_STUB_HPP
#define ANYTIME_LINT_FIXTURES_ANYTIME_STUB_HPP

#include <cstddef>
#include <cstdint>
#include <memory>

namespace anytime {

class StageContext {
public:
  bool checkpoint() { return true; }
  unsigned workerId() const { return 0; }
  unsigned workerCount() const { return 1; }
};

class Stage {
public:
  virtual ~Stage() = default;
  virtual void run(StageContext &ctx) = 0;
};

template <typename T>
struct Snapshot {
  std::shared_ptr<const T> value;
  std::uint64_t version = 0;
  bool final = false;
};

template <typename P>
struct SweepGang {
  P partial{};
};

struct SweepLayout {
  std::uint64_t steps = 0;
};

enum class SweepStatus { completed, stopped, abandoned };

template <typename P, typename ResetFn, typename StepFn, typename WindowFn>
SweepStatus
runPartitionedSweep(StageContext &ctx, SweepGang<P> &gang,
                    const SweepLayout &layout, ResetFn &&reset,
                    StepFn &&step, WindowFn &&window) {
  P &partial = gang.partial;
  reset(partial);
  for (std::uint64_t i = 0; i < layout.steps; ++i)
    step(i, partial, ctx);
  window(partial, std::uint64_t{0}, layout.steps);
  return SweepStatus::completed;
}

// Shapes mirrored from src/support/sync.hpp: the lock checks key on
// the qualified names anytime::Mutex / anytime::MutexLock.
class Mutex {
public:
  void lock() {}
  void unlock() {}
};

class MutexLock {
public:
  explicit MutexLock(Mutex &mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() { unlock(); }
  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;
  void lock() { mutex_.lock(); }
  void unlock() { mutex_.unlock(); }

private:
  Mutex &mutex_;
};

// Data-plane shapes mirrored from src/image/image.hpp and
// src/approx/storage.hpp: anytime-raw-float-in-kernel keys on
// functions taking these by value or reference.
template <typename T>
class Image {
public:
  Image(int width, int height)
      : width_(width), height_(height),
        data_(new T[static_cast<unsigned>(width * height)]()) {}
  int width() const { return width_; }
  int height() const { return height_; }
  T &at(int x, int y) { return data_[y * width_ + x]; }
  const T &at(int x, int y) const { return data_[y * width_ + x]; }

private:
  int width_ = 0;
  int height_ = 0;
  std::unique_ptr<T[]> data_;
};

using GrayImage = Image<std::uint8_t>;

template <typename T>
class ApproxStorage {
public:
  explicit ApproxStorage(std::size_t size) : data_(new T[size]()) {}
  T read(std::size_t index) const { return data_[index]; }
  void write(std::size_t index, T value) { data_[index] = value; }

private:
  std::unique_ptr<T[]> data_;
};

} // namespace anytime

#endif // ANYTIME_LINT_FIXTURES_ANYTIME_STUB_HPP
