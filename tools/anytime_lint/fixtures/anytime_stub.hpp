// Minimal stand-ins for the anytime types the checks key on. The
// checks match fully qualified names (::anytime::Stage,
// ::anytime::Snapshot, ::anytime::runPartitionedSweep), so fixtures
// only need declarations shaped like the real ones — keeping fixture
// compilation hermetic and fast (no repo include paths, no libstdc++
// concurrency headers).

#ifndef ANYTIME_LINT_FIXTURES_ANYTIME_STUB_HPP
#define ANYTIME_LINT_FIXTURES_ANYTIME_STUB_HPP

#include <cstdint>
#include <memory>

namespace anytime {

class StageContext {
public:
  bool checkpoint() { return true; }
  unsigned workerId() const { return 0; }
  unsigned workerCount() const { return 1; }
};

class Stage {
public:
  virtual ~Stage() = default;
  virtual void run(StageContext &ctx) = 0;
};

template <typename T>
struct Snapshot {
  std::shared_ptr<const T> value;
  std::uint64_t version = 0;
  bool final = false;
};

template <typename P>
struct SweepGang {
  P partial{};
};

struct SweepLayout {
  std::uint64_t steps = 0;
};

enum class SweepStatus { completed, stopped, abandoned };

template <typename P, typename ResetFn, typename StepFn, typename WindowFn>
SweepStatus
runPartitionedSweep(StageContext &ctx, SweepGang<P> &gang,
                    const SweepLayout &layout, ResetFn &&reset,
                    StepFn &&step, WindowFn &&window) {
  P &partial = gang.partial;
  reset(partial);
  for (std::uint64_t i = 0; i < layout.steps; ++i)
    step(i, partial, ctx);
  window(partial, std::uint64_t{0}, layout.steps);
  return SweepStatus::completed;
}

} // namespace anytime

#endif // ANYTIME_LINT_FIXTURES_ANYTIME_STUB_HPP
