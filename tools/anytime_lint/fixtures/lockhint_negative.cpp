// Fixture: anytime-lock-order-hint must stay completely silent.
// Cross-class nesting (the whole-program lock graph in anytime_verify
// owns that judgement), hand-off release-then-acquire, sequential
// non-nested scopes, and a lock taken inside a deferred lambda are all
// legitimate patterns in src/.

#include "anytime_stub.hpp"

namespace {

struct Queue {
  anytime::Mutex mutex;
  int depth = 0;
};

struct Scheduler {
  anytime::Mutex mutex;
  int pending = 0;
};

// Cross-class nesting follows one global order; the per-TU hint has
// nothing to say about it.
void
dispatch(Scheduler &scheduler, Queue &queue) {
  anytime::MutexLock schedulerLock(scheduler.mutex);
  anytime::MutexLock queueLock(queue.mutex);
  ++scheduler.pending;
  ++queue.depth;
}

// Hand-off: the first instance is released before the second of the
// same class is acquired — never two held at once.
void
rebalance(Queue &from, Queue &to) {
  anytime::MutexLock fromLock(from.mutex);
  const int moved = from.depth;
  from.depth = 0;
  fromLock.unlock();
  anytime::MutexLock toLock(to.mutex);
  to.depth += moved;
}

// Sequential scopes, one lock each (the markDegradedFinal pattern in
// core/buffer.hpp).
void
drainTwice(Queue &queue) {
  {
    anytime::MutexLock lock(queue.mutex);
    queue.depth = 0;
  }
  {
    anytime::MutexLock lock(queue.mutex);
    queue.depth = 0;
  }
}

// A lambda body runs later on another stack: the lock it takes is not
// nested under the lock held at the capture site.
template <typename Fn>
void
defer(Fn &&fn) {
  fn();
}

void
scheduleCallback(Scheduler &scheduler) {
  anytime::MutexLock lock(scheduler.mutex);
  ++scheduler.pending;
  lock.unlock();
  defer([&scheduler] {
    anytime::MutexLock callbackLock(scheduler.mutex);
    --scheduler.pending;
  });
}

} // namespace

int
main() {
  Scheduler scheduler;
  Queue a;
  Queue b;
  dispatch(scheduler, a);
  rebalance(a, b);
  drainTwice(b);
  scheduleCallback(scheduler);
  return scheduler.pending + a.depth;
}
