// Fixture: anytime-lock-order-hint must fire on every marked line.
// Two ambiguous nestings: acquiring a second mutex of the same class
// (instance order depends on the call site), and re-acquiring a mutex
// this scope already holds (anytime::Mutex is non-recursive).

#include "anytime_stub.hpp"

namespace {

struct Account {
  anytime::Mutex mutex;
  long balance = 0;
};

void
transfer(Account &from, Account &to, long amount) {
  anytime::MutexLock fromLock(from.mutex);
  anytime::MutexLock toLock(to.mutex); // expect-warning
  from.balance -= amount;
  to.balance += amount;
}

class Ledger {
public:
  void
  settle() {
    anytime::MutexLock outer(mutex_);
    anytime::MutexLock inner(mutex_); // expect-warning
    ++generation_;
  }

private:
  anytime::Mutex mutex_;
  unsigned long generation_ = 0;
};

long
auditLocal(anytime::Mutex &ledgerMutex) {
  anytime::MutexLock first(ledgerMutex);
  long sum = 0;
  {
    anytime::MutexLock again(ledgerMutex); // expect-warning
    ++sum;
  }
  return sum;
}

} // namespace

int
main() {
  Account a;
  Account b;
  transfer(a, b, 10);
  Ledger ledger;
  ledger.settle();
  anytime::Mutex mutex;
  return static_cast<int>(auditLocal(mutex)) - 1;
}
