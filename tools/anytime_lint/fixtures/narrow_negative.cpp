// Fixture: anytime-narrow-accumulator must stay silent here. The
// sanctioned pattern: accumulators are at least as wide as what they
// absorb (widen first, accumulate second), matching the fixed-point
// dot-product contract.

#include <cstdint>

namespace {

std::int64_t
accumulateWide(const std::int32_t *values, unsigned count) {
  std::int64_t total = 0;
  for (unsigned i = 0; i < count; ++i) {
    // Narrow into wide: always representable.
    total += values[i];
  }
  return total;
}

std::int64_t
accumulateSameWidth(const std::int64_t *values, unsigned count) {
  std::int64_t total = 0;
  for (unsigned i = 0; i < count; ++i) {
    total += values[i];
  }
  return total;
}

std::int32_t
explicitNarrowing(std::int64_t wide) {
  std::int32_t total = 0;
  // An explicit cast documents intent; the check targets the silent
  // conversion, not deliberate truncation.
  total += static_cast<std::int32_t>(wide);
  return total;
}

double
floatingAccumulator(const std::int64_t *values, unsigned count) {
  double total = 0.0;
  for (unsigned i = 0; i < count; ++i) {
    // Non-integer accumulators are out of scope for this check.
    total += static_cast<double>(values[i]);
  }
  return total;
}

} // namespace

int
main() {
  const std::int32_t narrow[3] = {1, 2, 3};
  const std::int64_t wide[3] = {4, 5, 6};
  return static_cast<int>(accumulateWide(narrow, 3) +
                          accumulateSameWidth(wide, 3) +
                          explicitNarrowing(7)) +
         static_cast<int>(floatingAccumulator(wide, 3));
}
