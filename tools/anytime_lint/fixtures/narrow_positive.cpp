// Fixture: anytime-narrow-accumulator must fire on every marked line.
// Accumulating a wide value into a narrower integer silently truncates
// partial sums — the bug class the fixed-point contract (widen before
// accumulate) exists to prevent.

#include <cstdint>

namespace {

struct SweepTotals {
  std::int32_t hits = 0;
  std::int64_t weight = 0;
};

std::int32_t
accumulateNarrow(const std::int64_t *values, unsigned count) {
  std::int32_t total = 0;
  for (unsigned i = 0; i < count; ++i) {
    total += values[i]; // expect-warning
  }
  return total;
}

std::uint16_t
drainCredits(std::uint16_t credits, std::uint64_t spent) {
  credits -= spent; // expect-warning
  return credits;
}

void
foldTotals(SweepTotals &totals, std::int64_t delta) {
  totals.hits += delta; // expect-warning
  totals.weight += delta;
}

} // namespace

int
main() {
  const std::int64_t values[3] = {1, 2, 3};
  SweepTotals totals;
  foldTotals(totals, 4);
  return accumulateNarrow(values, 3) +
         static_cast<int>(drainCredits(100, 5)) +
         static_cast<int>(totals.hits);
}
