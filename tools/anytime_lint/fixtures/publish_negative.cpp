// Fixture: anytime-publish-discipline must stay silent here. Clean
// stage code reads snapshots, mutates only its private state, and
// whole-snapshot assignment (refreshing a read view) is fine.

#include "anytime_stub.hpp"

#include <memory>
#include <vector>

namespace {

struct Image {
  std::vector<int> pixels;
};

class CleanStage : public anytime::Stage {
public:
  void
  run(anytime::StageContext &ctx) override {
    (void)ctx;
    // Reading published state is the whole point.
    if (input.value != nullptr && !input.final)
      scratch.pixels = input.value->pixels;
    // Private state mutates freely.
    scratch.pixels.push_back(static_cast<int>(input.version));
    // Replacing the whole view with a newer snapshot is a read-side
    // refresh, not a write into a published version.
    input = anytime::Snapshot<Image>{};
  }

  anytime::Snapshot<Image> input;

private:
  Image scratch;
};

/** Non-stage code may shape snapshot literals (test harnesses do). */
anytime::Snapshot<Image>
makeFixtureSnapshot() {
  anytime::Snapshot<Image> snapshot;
  snapshot.value = std::make_shared<const Image>();
  snapshot.version = 1;
  snapshot.final = true;
  return snapshot;
}

} // namespace

int
main() {
  CleanStage stage;
  stage.input = makeFixtureSnapshot();
  anytime::StageContext ctx;
  stage.run(ctx);
  return 0;
}
