// Fixture: anytime-publish-discipline must fire on every marked line.

#include "anytime_stub.hpp"

#include <memory>
#include <vector>

namespace {

struct Image {
  std::vector<int> pixels;
};

class SneakyStage : public anytime::Stage {
public:
  void
  run(anytime::StageContext &ctx) override {
    (void)ctx;
    // Rewriting snapshot bookkeeping forges a version that was never
    // published.
    input.version = 99; // expect-warning
    input.final = true; // expect-warning
    // const_cast in a stage body: mutating the shared immutable value
    // readers hold.
    if (input.value != nullptr) {
      auto &cells = const_cast<Image &>(*input.value); // expect-warning
      cells.pixels.clear();
    }
  }

  anytime::Snapshot<Image> input;
};

} // namespace

int
main() {
  SneakyStage stage;
  stage.input.value = std::make_shared<const Image>();
  anytime::StageContext ctx;
  stage.run(ctx);
  return static_cast<int>(stage.input.version);
}
