// Fixture: anytime-raw-float-in-kernel must stay completely silent.
// The exemptions are load-bearing: *Reference* functions are the
// scalar oracle the SIMD spec is validated against, floating-point
// returns mark quality metrics (reported, never published), integer
// accumulation is the fixed-point path, and functions without
// data-plane parameters don't touch published pixels.

#include "anytime_stub.hpp"

#include <cstdint>

namespace {

// The scalar oracle: deliberately plain accumulation, exempted by
// name so tests can diff SIMD output against it.
std::uint8_t
convolveRowReference(const anytime::GrayImage &src, const float *taps,
                     int count) {
  float acc = 0.f;
  for (int i = 0; i < count; ++i) {
    acc += taps[i] * static_cast<float>(src.at(i, 0));
  }
  return static_cast<std::uint8_t>(acc);
}

// Quality metric: floating-point return means the result is reported,
// not written into a published buffer.
double
meanValue(const anytime::GrayImage &image) {
  double sum = 0.0;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      sum += static_cast<double>(image.at(x, y));
    }
  }
  return sum / (image.width() * image.height());
}

// Integer accumulation: the fixed-point contract, not raw floats.
std::uint64_t
pixelSum(const anytime::GrayImage &image) {
  std::uint64_t sum = 0;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      sum += image.at(x, y);
    }
  }
  return sum;
}

// No data-plane parameter: tap construction is setup math, not a
// kernel loop over pixels.
float
taperWeight(const float *taps, int count) {
  float total = 0.f;
  for (int i = 0; i < count; ++i) {
    total += taps[i];
  }
  return total;
}

} // namespace

int
main() {
  anytime::GrayImage image(4, 4);
  const float taps[3] = {0.25f, 0.5f, 0.25f};
  return convolveRowReference(image, taps, 3) +
         static_cast<int>(meanValue(image)) +
         static_cast<int>(pixelSum(image)) +
         static_cast<int>(taperWeight(taps, 3));
}
