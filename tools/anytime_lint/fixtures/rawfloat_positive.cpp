// Fixture: anytime-raw-float-in-kernel must fire on every marked
// line. A hand-rolled floating-point accumulation loop in a
// data-plane function re-derives the arithmetic with its own
// association order, forking the SIMD ops-table specification.

#include "anytime_stub.hpp"

#include <cstddef>
#include <cstdint>

namespace {

std::uint8_t
applyTaps(const anytime::GrayImage &src, const float *taps, int count) {
  float acc = 0.f;
  for (int i = 0; i < count; ++i) {
    acc += taps[i] * static_cast<float>(src.at(i, 0)); // expect-warning
  }
  return static_cast<std::uint8_t>(acc);
}

std::uint8_t
foldStorage(anytime::ApproxStorage<std::uint8_t> &storage,
            std::size_t count) {
  float bias = 255.f;
  std::size_t index = 0;
  while (index < count) {
    bias -= 0.5f * static_cast<float>(storage.read(index)); // expect-warning
    ++index;
  }
  return static_cast<std::uint8_t>(bias);
}

} // namespace

int
main() {
  anytime::GrayImage image(8, 8);
  const float taps[3] = {0.25f, 0.5f, 0.25f};
  anytime::ApproxStorage<std::uint8_t> storage(8);
  return applyTaps(image, taps, 3) + foldStorage(storage, 8);
}
