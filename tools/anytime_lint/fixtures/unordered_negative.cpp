// Fixture: anytime-unordered-iteration-in-merge must stay completely
// silent. Ordered containers in merges are fine; unordered containers
// are fine outside deterministic-replay context (export paths, debug
// endpoints).

#include "anytime_stub.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace {

// Ordered container in a merge: visit order is defined.
double
mergePartials(const std::map<unsigned, double> &partials) {
  double sum = 0.0;
  for (const auto &entry : partials) {
    sum += entry.second;
  }
  return sum;
}

// Vector in a stage body: index order is defined.
class SumStage : public anytime::Stage {
public:
  void
  run(anytime::StageContext &ctx) override {
    (void)ctx;
    for (const unsigned value : values_) {
      total_ += value;
    }
  }

private:
  std::vector<unsigned> values_;
  std::uint64_t total_ = 0;
};

// Unordered iteration outside stage/merge context: the trace/metric
// export path may emit in any order.
std::size_t
exportCounters(const std::unordered_map<std::string, long> &counters) {
  std::size_t emitted = 0;
  for (const auto &entry : counters) {
    emitted += entry.first.size() + static_cast<bool>(entry.second);
  }
  return emitted;
}

} // namespace

int
main() {
  std::map<unsigned, double> partials;
  SumStage stage;
  anytime::StageContext ctx;
  stage.run(ctx);
  std::unordered_map<std::string, long> counters;
  return static_cast<int>(mergePartials(partials)) +
         static_cast<int>(exportCounters(counters));
}
