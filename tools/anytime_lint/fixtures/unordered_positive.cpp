// Fixture: anytime-unordered-iteration-in-merge must fire on every
// marked line. Iterating a hash container in a stage body or leader
// merge makes the visit order depend on hashing and insertion history,
// which breaks bit-identity across worker counts.

#include "anytime_stub.hpp"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace {

class HistogramStage : public anytime::Stage {
public:
  void
  run(anytime::StageContext &ctx) override {
    (void)ctx;
    for (const unsigned bin : touched_) { // expect-warning
      total_ += bin;
    }
  }

private:
  std::unordered_set<unsigned> touched_;
  std::uint64_t total_ = 0;
};

double
mergePartials(const std::unordered_map<unsigned, double> &partials) {
  double sum = 0.0;
  for (const auto &entry : partials) { // expect-warning
    sum += entry.second;
  }
  return sum;
}

int
sweepOverBuckets(std::unordered_map<unsigned, int> &buckets) {
  anytime::StageContext ctx;
  anytime::SweepGang<int> gang;
  anytime::SweepLayout layout;
  layout.steps = 1;
  anytime::runPartitionedSweep(
      ctx, gang, layout, [](int &partial) { partial = 0; },
      [&buckets](unsigned long, int &partial, anytime::StageContext &) {
        for (const auto &entry : buckets) { // expect-warning
          partial += entry.second;
        }
      },
      [](int &, unsigned long, unsigned long) { return true; });
  return gang.partial;
}

} // namespace

int
main() {
  HistogramStage stage;
  anytime::StageContext ctx;
  stage.run(ctx);
  std::unordered_map<unsigned, double> partials;
  std::unordered_map<unsigned, int> buckets;
  return static_cast<int>(mergePartials(partials)) +
         sweepOverBuckets(buckets);
}
