// Fixture: anytime-no-wallclock-in-stage-body must stay silent here.
// Stage bodies below are deterministic (seeded generators, ordinal
// arithmetic), steady_clock is the sanctioned scheduling clock, and
// wall-clock reads outside stage bodies (harness timing) are fine.

#include "anytime_stub.hpp"

#include <chrono>
#include <cstdlib>
#include <random>

namespace {

class DeterministicStage : public anytime::Stage {
public:
  explicit DeterministicStage(unsigned seed) : generator(seed) {}

  void
  run(anytime::StageContext &ctx) override {
    (void)ctx;
    // Seeded engine: replays bit-identically.
    accumulator += static_cast<long>(generator());
    // steady_clock is allowed — scheduling may depend on time, the
    // published values may not, and this read feeds no output.
    lastCheckpoint = std::chrono::steady_clock::now();
  }

private:
  std::mt19937 generator;
  long accumulator = 0;
  std::chrono::steady_clock::time_point lastCheckpoint;
};

int
deterministicSweep() {
  anytime::StageContext ctx;
  anytime::SweepGang<int> gang;
  anytime::SweepLayout layout;
  layout.steps = 4;
  anytime::runPartitionedSweep(
      ctx, gang, layout, [](int &partial) { partial = 0; },
      [](unsigned long step, int &partial, anytime::StageContext &) {
        partial += static_cast<int>(step * 2654435761u);
      },
      [](int &partial, unsigned long, unsigned long) {
        return partial != 0;
      });
  return gang.partial;
}

/** Harness code (not a stage body): wall-clock reads are legitimate. */
double
harnessWallSeconds() {
  const auto wall = std::chrono::system_clock::now();
  return std::chrono::duration<double>(wall.time_since_epoch()).count() +
         std::rand() % 2;
}

} // namespace

int
main() {
  DeterministicStage stage(42);
  anytime::StageContext ctx;
  stage.run(ctx);
  return deterministicSweep() + static_cast<int>(harnessWallSeconds());
}
