// Fixture: anytime-no-wallclock-in-stage-body must fire on every
// marked line. Each `// expect-warning` marks a line the check is
// required to diagnose; the runner fails if any marker goes silent.

#include "anytime_stub.hpp"

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace {

class JitteryStage : public anytime::Stage {
public:
  void
  run(anytime::StageContext &ctx) override {
    (void)ctx;
    seed = std::rand(); // expect-warning
    startedAt = std::time(nullptr); // expect-warning
    const auto wall =
        std::chrono::system_clock::now(); // expect-warning
    (void)wall;
    const auto precise =
        std::chrono::high_resolution_clock::now(); // expect-warning
    (void)precise;
    std::random_device entropy; // expect-warning
    seed += entropy();
  }

private:
  unsigned long seed = 0;
  long startedAt = 0;
};

int
sweepWithWallclock() {
  anytime::StageContext ctx;
  anytime::SweepGang<int> gang;
  anytime::SweepLayout layout;
  layout.steps = 4;
  anytime::runPartitionedSweep(
      ctx, gang, layout, [](int &partial) { partial = 0; },
      [](unsigned long step, int &partial, anytime::StageContext &) {
        partial += static_cast<int>(step);
        partial ^= std::rand(); // expect-warning
      },
      [](int &partial, unsigned long, unsigned long) {
        return partial != 0;
      });
  return gang.partial;
}

} // namespace

int
main() {
  JitteryStage stage;
  anytime::StageContext ctx;
  stage.run(ctx);
  return sweepWithWallclock();
}
