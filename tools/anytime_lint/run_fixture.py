#!/usr/bin/env python3
"""Run one anytime-lint check against one fixture and grade the output.

A fixture marks every line that must produce a diagnostic with a
trailing ``// expect-warning`` comment; a fixture with no markers is a
negative fixture and must come back completely clean. The runner fails
when a marked line stays silent, when an unmarked line fires, or when
the fixture does not compile. On failure it prints a unified diff of
the expected-vs-actual diagnostic lines so the divergence is readable
at a glance in CI logs.
"""

from __future__ import annotations

import argparse
import difflib
import re
import subprocess
import sys
from pathlib import Path

MARKER = "// expect-warning"


def expected_lines(fixture: Path) -> set[int]:
    lines = set()
    text = fixture.read_text()
    for number, line in enumerate(text.splitlines(), start=1):
        if MARKER in line:
            lines.add(number)
    return lines


def reported_lines(output: str, fixture: Path, check: str) -> set[int]:
    pattern = re.compile(
        r"^(?P<file>[^:\n]+):(?P<line>\d+):\d+: warning: .*\["
        + re.escape(check)
        + r"\]$",
        re.MULTILINE,
    )
    lines = set()
    for match in pattern.finditer(output):
        if Path(match.group("file")).name == fixture.name:
            lines.add(int(match.group("line")))
    return lines


def render_diagnostics(lines: set[int], check: str) -> list[str]:
    """Canonical one-per-line rendering used for the failure diff."""
    return [f"line {number}: warning [{check}]" for number in sorted(lines)]


def diagnostics_diff(
    expected: set[int], reported: set[int], check: str, fixture_name: str
) -> str:
    """Unified diff between expected and actual diagnostic sets."""
    diff = difflib.unified_diff(
        render_diagnostics(expected, check),
        render_diagnostics(reported, check),
        fromfile=f"{fixture_name} (expected diagnostics)",
        tofile=f"{fixture_name} (actual diagnostics)",
        lineterm="",
    )
    return "\n".join(diff)


def grade(
    expected: set[int], reported: set[int], check: str, fixture_name: str
) -> tuple[bool, str]:
    """Return (ok, report). The report explains a failing grade."""
    if expected == reported:
        kind = "positive" if expected else "negative"
        return True, (
            f"PASS: {check} on {fixture_name} "
            f"({kind}, {len(expected)} expected diagnostics)"
        )
    lines = [diagnostics_diff(expected, reported, check, fixture_name)]
    missing = sorted(expected - reported)
    unexpected = sorted(reported - expected)
    if missing:
        lines.append(
            f"FAIL: {check} stayed silent on marked line(s) "
            f"{missing} of {fixture_name}"
        )
    if unexpected:
        lines.append(
            f"FAIL: {check} fired on unmarked line(s) "
            f"{unexpected} of {fixture_name}"
        )
    return False, "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang-tidy", required=True)
    parser.add_argument("--plugin", required=True)
    parser.add_argument("--check", required=True)
    parser.add_argument("--fixture", required=True, type=Path)
    args = parser.parse_args()

    command = [
        args.clang_tidy,
        f"--load={args.plugin}",
        f"--checks=-*,{args.check}",
        str(args.fixture),
        "--",
        "-std=c++20",
    ]
    result = subprocess.run(
        command, capture_output=True, text=True, check=False
    )
    output = result.stdout + result.stderr
    if "error:" in output:
        print(output)
        print(f"FAIL: {args.fixture.name} did not compile cleanly")
        return 1

    expected = expected_lines(args.fixture)
    reported = reported_lines(result.stdout, args.fixture, args.check)
    ok, report = grade(expected, reported, args.check, args.fixture.name)
    if not ok:
        print(output)
    print(report)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
