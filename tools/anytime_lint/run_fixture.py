#!/usr/bin/env python3
"""Run one anytime-lint check against one fixture and grade the output.

A fixture marks every line that must produce a diagnostic with a
trailing ``// expect-warning`` comment; a fixture with no markers is a
negative fixture and must come back completely clean. The runner fails
when a marked line stays silent, when an unmarked line fires, or when
the fixture does not compile.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

MARKER = "// expect-warning"


def expected_lines(fixture: Path) -> set[int]:
    lines = set()
    for number, text in enumerate(fixture.read_text().splitlines(), start=1):
        if MARKER in text:
            lines.add(number)
    return lines


def reported_lines(output: str, fixture: Path, check: str) -> set[int]:
    pattern = re.compile(
        r"^(?P<file>[^:\n]+):(?P<line>\d+):\d+: warning: .*\["
        + re.escape(check)
        + r"\]$",
        re.MULTILINE,
    )
    lines = set()
    for match in pattern.finditer(output):
        if Path(match.group("file")).name == fixture.name:
            lines.add(int(match.group("line")))
    return lines


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang-tidy", required=True)
    parser.add_argument("--plugin", required=True)
    parser.add_argument("--check", required=True)
    parser.add_argument("--fixture", required=True, type=Path)
    args = parser.parse_args()

    command = [
        args.clang_tidy,
        f"--load={args.plugin}",
        f"--checks=-*,{args.check}",
        str(args.fixture),
        "--",
        "-std=c++20",
    ]
    result = subprocess.run(
        command, capture_output=True, text=True, check=False
    )
    output = result.stdout + result.stderr
    if "error:" in output:
        print(output)
        print(f"FAIL: {args.fixture.name} did not compile cleanly")
        return 1

    expected = expected_lines(args.fixture)
    reported = reported_lines(result.stdout, args.fixture, args.check)
    missing = sorted(expected - reported)
    unexpected = sorted(reported - expected)
    if missing or unexpected:
        print(output)
        if missing:
            print(
                f"FAIL: {args.check} stayed silent on marked line(s) "
                f"{missing} of {args.fixture.name}"
            )
        if unexpected:
            print(
                f"FAIL: {args.check} fired on unmarked line(s) "
                f"{unexpected} of {args.fixture.name}"
            )
        return 1

    kind = "positive" if expected else "negative"
    print(
        f"PASS: {args.check} on {args.fixture.name} "
        f"({kind}, {len(expected)} expected diagnostics)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
