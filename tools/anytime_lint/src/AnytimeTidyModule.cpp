//===--- AnytimeTidyModule.cpp --------------------------------------------===//
//
// clang-tidy module registering the anytime-* checks. Built as a
// loadable plugin:
//
//   clang-tidy -load libanytime_lint.so -checks=-*,anytime-* file.cpp --
//
// Each check enforces one invariant the anytime-automaton paper states
// but the compiler cannot see (see DESIGN.md section 11).
//
//===----------------------------------------------------------------------===//

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "LockOrderHintCheck.h"
#include "NarrowAccumulatorCheck.h"
#include "NoWallclockInStageBodyCheck.h"
#include "PublishDisciplineCheck.h"
#include "RawFloatInKernelCheck.h"
#include "UnorderedIterationInMergeCheck.h"

namespace clang::tidy {
namespace anytime {

class AnytimeModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<NoWallclockInStageBodyCheck>(
        "anytime-no-wallclock-in-stage-body");
    CheckFactories.registerCheck<PublishDisciplineCheck>(
        "anytime-publish-discipline");
    CheckFactories.registerCheck<NarrowAccumulatorCheck>(
        "anytime-narrow-accumulator");
    CheckFactories.registerCheck<LockOrderHintCheck>(
        "anytime-lock-order-hint");
    CheckFactories.registerCheck<UnorderedIterationInMergeCheck>(
        "anytime-unordered-iteration-in-merge");
    CheckFactories.registerCheck<RawFloatInKernelCheck>(
        "anytime-raw-float-in-kernel");
  }
};

} // namespace anytime

static ClangTidyModuleRegistry::Add<anytime::AnytimeModule>
    X("anytime-module", "Checks enforcing anytime-automaton contracts.");

// Referenced by the registry machinery to keep the module linked in.
volatile int AnytimeModuleAnchorSource = 0;

} // namespace clang::tidy
