//===--- LockOrderHintCheck.cpp -------------------------------------------===//

#include "LockOrderHintCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

#include "LockNesting.h"

using namespace clang::ast_matchers;

namespace clang::tidy::anytime {

void
LockOrderHintCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      functionDecl(isDefinition(), hasBody(stmt())).bind("function"), this);
}

void
LockOrderHintCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Function = Result.Nodes.getNodeAs<FunctionDecl>("function");
  if (Function == nullptr || !Function->doesThisDeclarationHaveABody())
    return;
  anytime_analysis::LockNestingScanner Scanner;
  Scanner.scan(Function, [this](const anytime_analysis::ActiveLock &Held,
                                const anytime_analysis::ActiveLock &Incoming) {
    if (!Held.instanceKey.empty() &&
        Held.instanceKey == Incoming.instanceKey) {
      diag(Incoming.loc,
           "re-acquiring mutex '%0' already held in this scope; "
           "anytime::Mutex is non-recursive, this self-deadlocks")
          << Held.mutexKey;
      diag(Held.loc, "first acquired here", DiagnosticIDs::Note);
      return;
    }
    if (Held.mutexKey == Incoming.mutexKey ||
        (!Held.mutexClass.empty() &&
         Held.mutexClass == Incoming.mutexClass)) {
      diag(Incoming.loc,
           "acquiring '%0' while holding '%1' nests two mutexes of the "
           "same class '%2'; two instances lock in call-site order, "
           "which deadlocks under inverted pairs — order by a stable "
           "key or restructure to hold one at a time")
          << Incoming.mutexKey << Held.mutexKey << Held.mutexClass;
      diag(Held.loc, "outer lock acquired here", DiagnosticIDs::Note);
    }
  });
}

} // namespace clang::tidy::anytime
