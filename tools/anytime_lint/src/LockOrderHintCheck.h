//===--- LockOrderHintCheck.h -----------------------------------*- C++ -*-===//
//
// anytime-lock-order-hint
//
// -Werror=thread-safety proves per-function lock discipline but says
// nothing about acquisition ORDER, and the whole-program lock-order
// pass in tools/anytime_verify only runs over the full compile
// database in CI. This check is the fast per-TU early warning for the
// two nestings that are deadlock-ambiguous on their face:
//
//  - acquiring a mutex while already holding a mutex that lives in the
//    same class (two instances of one type lock in whatever order the
//    call site happens to use — the classic transfer(a, b) /
//    transfer(b, a) deadlock);
//  - re-acquiring a mutex this function already holds (self-deadlock:
//    anytime::Mutex is non-recursive).
//
// Cross-class nestings are left to anytime_verify, which sees every TU
// and can certify the global graph acyclic.
//
//===----------------------------------------------------------------------===//

#ifndef ANYTIME_LINT_LOCK_ORDER_HINT_CHECK_H
#define ANYTIME_LINT_LOCK_ORDER_HINT_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::anytime {

class LockOrderHintCheck : public ClangTidyCheck {
public:
  LockOrderHintCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace clang::tidy::anytime

#endif // ANYTIME_LINT_LOCK_ORDER_HINT_CHECK_H
