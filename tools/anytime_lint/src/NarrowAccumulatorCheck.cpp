//===--- NarrowAccumulatorCheck.cpp ---------------------------------------===//

#include "NarrowAccumulatorCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::anytime {

void
NarrowAccumulatorCheck::registerMatchers(MatchFinder *Finder) {
  // Additive compound assignments are the accumulator idiom; plain
  // assignments that narrow are bugprone-narrowing-conversions
  // territory and stay out of scope here.
  Finder->addMatcher(
      binaryOperator(hasAnyOperatorName("+=", "-="),
                     hasLHS(expr(hasType(isInteger()))),
                     hasRHS(expr(hasType(isInteger()))))
          .bind("accumulate"),
      this);
}

void
NarrowAccumulatorCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Accumulate =
      Result.Nodes.getNodeAs<BinaryOperator>("accumulate");
  const Expr *Lhs = Accumulate->getLHS();
  const Expr *Rhs = Accumulate->getRHS()->IgnoreParenImpCasts();
  const QualType LhsType = Lhs->getType();
  const QualType RhsType = Rhs->getType();
  if (LhsType.isNull() || RhsType.isNull())
    return;
  if (LhsType->isDependentType() || RhsType->isDependentType())
    return;
  if (LhsType->isBooleanType() || RhsType->isBooleanType())
    return;
  ASTContext &Context = *Result.Context;
  const uint64_t LhsBits = Context.getIntWidth(LhsType);
  const uint64_t RhsBits = Context.getIntWidth(RhsType);
  if (RhsBits <= LhsBits)
    return;
  diag(Accumulate->getOperatorLoc(),
       "accumulating a %0-bit value into a %1-bit accumulator "
       "truncates the widened product; keep the accumulator at the "
       "widened width (the fixed-point contract accumulates int32 "
       "plane products in int64)")
      << static_cast<unsigned>(RhsBits) << static_cast<unsigned>(LhsBits)
      << Accumulate->getSourceRange();
}

} // namespace clang::tidy::anytime
