//===--- NarrowAccumulatorCheck.h -------------------------------*- C++ -*-===//
//
// anytime-narrow-accumulator
//
// The reduced-precision constructions (paper Section III-B2) widen
// before they accumulate: Fixed::operator* widens int32 operands to
// int64 before rescaling, and BitPlaneDotProduct accumulates plane
// partial products in a 64-bit accumulator because intermediate sums
// may transiently exceed the final product's range (see
// approx/fixed_point.hpp). Accumulating a wider integer expression
// into a narrower variable silently truncates exactly the bits the
// anytime refinement is supposed to deliver, so this check flags
// compound additive assignments (+=, -=) whose right-hand side has a
// strictly wider integer type than the accumulator.
//
//===----------------------------------------------------------------------===//

#ifndef ANYTIME_LINT_NARROW_ACCUMULATOR_CHECK_H
#define ANYTIME_LINT_NARROW_ACCUMULATOR_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::anytime {

class NarrowAccumulatorCheck : public ClangTidyCheck {
public:
  NarrowAccumulatorCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace clang::tidy::anytime

#endif // ANYTIME_LINT_NARROW_ACCUMULATOR_CHECK_H
