//===--- NoWallclockInStageBodyCheck.cpp ----------------------------------===//

#include "NoWallclockInStageBodyCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::anytime {

namespace {

/** Expression sits in deterministic-replay territory: a Stage method
 *  or a lambda written inline into a runPartitionedSweep() call. */
auto
inStageBody()
{
  return anyOf(
      hasAncestor(cxxMethodDecl(ofClass(cxxRecordDecl(
          isSameOrDerivedFrom(hasName("::anytime::Stage")))))),
      hasAncestor(callExpr(callee(functionDecl(
          hasName("::anytime::runPartitionedSweep"))))));
}

} // namespace

void
NoWallclockInStageBodyCheck::registerMatchers(MatchFinder *Finder) {
  const auto WallclockFree = functionDecl(hasAnyName(
      "::rand", "::srand", "::random", "::srandom", "::drand48",
      "::lrand48", "::time", "::clock", "::gettimeofday",
      "::clock_gettime", "::std::rand", "::std::srand", "::std::time"));
  Finder->addMatcher(
      callExpr(callee(WallclockFree), inStageBody()).bind("call"), this);

  const auto WallClock = cxxRecordDecl(hasAnyName(
      "::std::chrono::system_clock",
      "::std::chrono::high_resolution_clock"));
  Finder->addMatcher(
      callExpr(callee(cxxMethodDecl(hasName("now"), ofClass(WallClock))),
               inStageBody())
          .bind("call"),
      this);

  Finder->addMatcher(
      cxxConstructExpr(hasDeclaration(cxxConstructorDecl(ofClass(
                           cxxRecordDecl(hasName("::std::random_device"))))),
                       inStageBody())
          .bind("construct"),
      this);
}

void
NoWallclockInStageBodyCheck::check(
    const MatchFinder::MatchResult &Result) {
  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call")) {
    const FunctionDecl *Callee = Call->getDirectCallee();
    diag(Call->getBeginLoc(),
         "wall-clock or randomness source %0 inside an anytime stage "
         "body; stage output must be a deterministic function of its "
         "inputs so every published version replays bit-identically "
         "across worker counts")
        << (Callee != nullptr ? Callee->getQualifiedNameAsString()
                              : std::string("<unknown>"))
        << Call->getSourceRange();
    return;
  }
  if (const auto *Construct =
          Result.Nodes.getNodeAs<CXXConstructExpr>("construct")) {
    diag(Construct->getBeginLoc(),
         "std::random_device construction inside an anytime stage body; "
         "seed deterministic generators outside the stage and pass the "
         "seed in so published versions replay bit-identically")
        << Construct->getSourceRange();
  }
}

} // namespace clang::tidy::anytime
