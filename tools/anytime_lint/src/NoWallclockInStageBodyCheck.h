//===--- NoWallclockInStageBodyCheck.h --------------------------*- C++ -*-===//
//
// anytime-no-wallclock-in-stage-body
//
// Partitioned anytime sweeps must publish a version sequence that is
// bit-identical across worker counts (paper Section IV-C1); the repo's
// determinism tests replay runs and diff every version. Any wall-clock
// or nondeterministic-randomness read inside a stage body breaks that
// replay, so this check flags calls to rand()/time()/clock()/
// gettimeofday(), std::chrono::system_clock::now(),
// std::chrono::high_resolution_clock::now(), and std::random_device
// construction when they appear inside a method of a class derived
// from anytime::Stage or inside a lambda passed to
// anytime::runPartitionedSweep. steady_clock is deliberately allowed:
// it is the scheduling clock, and scheduling (unlike stage output) may
// depend on time.
//
//===----------------------------------------------------------------------===//

#ifndef ANYTIME_LINT_NO_WALLCLOCK_IN_STAGE_BODY_CHECK_H
#define ANYTIME_LINT_NO_WALLCLOCK_IN_STAGE_BODY_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::anytime {

class NoWallclockInStageBodyCheck : public ClangTidyCheck {
public:
  NoWallclockInStageBodyCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace clang::tidy::anytime

#endif // ANYTIME_LINT_NO_WALLCLOCK_IN_STAGE_BODY_CHECK_H
