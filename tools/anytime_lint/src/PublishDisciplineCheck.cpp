//===--- PublishDisciplineCheck.cpp ---------------------------------------===//

#include "PublishDisciplineCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::anytime {

namespace {

/** Stage code: a Stage method body or a lambda written inline into a
 *  runPartitionedSweep() call. Harness/test code that shapes snapshot
 *  literals stays out of scope. */
auto
inStageBody()
{
  return anyOf(
      hasAncestor(cxxMethodDecl(ofClass(cxxRecordDecl(
          isSameOrDerivedFrom(hasName("::anytime::Stage")))))),
      hasAncestor(callExpr(callee(functionDecl(
          hasName("::anytime::runPartitionedSweep"))))));
}

} // namespace

void
PublishDisciplineCheck::registerMatchers(MatchFinder *Finder) {
  // Writing a Snapshot field rewrites a published version in place —
  // VersionedBuffer::publish*() is the only legitimate version writer.
  // Snapshot<T> is a class template; matching the member's parent
  // record by name covers every instantiation.
  Finder->addMatcher(
      binaryOperator(
          isAssignmentOperator(),
          hasLHS(ignoringParenImpCasts(
              memberExpr(member(fieldDecl(hasParent(cxxRecordDecl(
                             hasName("::anytime::Snapshot"))))))
                  .bind("member"))),
          inStageBody())
          .bind("assign"),
      this);

  // const_cast inside a stage body: the only way to mutate the shared
  // immutable value behind snapshot.value, and never needed by clean
  // stage code (stages own their private state and publish copies).
  Finder->addMatcher(cxxConstCastExpr(inStageBody()).bind("cast"), this);
}

void
PublishDisciplineCheck::check(const MatchFinder::MatchResult &Result) {
  if (const auto *Assign =
          Result.Nodes.getNodeAs<BinaryOperator>("assign")) {
    const auto *Member = Result.Nodes.getNodeAs<MemberExpr>("member");
    diag(Assign->getOperatorLoc(),
         "writing %0 mutates a published buffer version in place; "
         "versions are immutable once published (Property 3) — produce "
         "a new value and publish it through the buffer")
        << Member->getMemberDecl() << Assign->getSourceRange();
    return;
  }
  if (const auto *Cast =
          Result.Nodes.getNodeAs<CXXConstCastExpr>("cast")) {
    diag(Cast->getBeginLoc(),
         "const_cast inside an anytime stage body; snapshots share "
         "immutable values with concurrent readers, so casting away "
         "const here can mutate a published version behind the "
         "publish/merge API")
        << Cast->getSourceRange();
  }
}

} // namespace clang::tidy::anytime
