//===--- PublishDisciplineCheck.h -------------------------------*- C++ -*-===//
//
// anytime-publish-discipline
//
// Paper Properties 2 and 3: each buffer has exactly one writer stage
// and every intermediate output is written atomically through the
// buffer's publish path. Consumers hold Snapshot<T> views whose value
// is shared_ptr<const T> — immutability is what makes "read whichever
// output happens to be in the buffer" safe while the producer keeps
// publishing. This check flags the two ways stage code can write a
// published version behind the publish API's back:
//
//  - assigning to a field of anytime::Snapshot (value/version/final)
//    instead of waiting for (or publishing) a new version;
//  - const_cast inside a stage body, the only door to mutating the
//    shared immutable value a snapshot points at.
//
//===----------------------------------------------------------------------===//

#ifndef ANYTIME_LINT_PUBLISH_DISCIPLINE_CHECK_H
#define ANYTIME_LINT_PUBLISH_DISCIPLINE_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::anytime {

class PublishDisciplineCheck : public ClangTidyCheck {
public:
  PublishDisciplineCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace clang::tidy::anytime

#endif // ANYTIME_LINT_PUBLISH_DISCIPLINE_CHECK_H
