//===--- RawFloatInKernelCheck.cpp ----------------------------------------===//

#include "RawFloatInKernelCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"

using namespace clang::ast_matchers;

namespace clang::tidy::anytime {

void
RawFloatInKernelCheck::registerMatchers(MatchFinder *Finder) {
  // A data-plane function touches pixel storage directly.
  const auto DataPlaneClass = cxxRecordDecl(
      hasAnyName("::anytime::Image", "::anytime::ApproxStorage"));
  // Desugar through the GrayImage/ApproxStorage<T> typedef sugar to
  // the underlying record, by value or by reference.
  const auto DataPlaneType = qualType(hasUnqualifiedDesugaredType(
      recordType(hasDeclaration(DataPlaneClass))));
  const auto TakesDataPlane = hasAnyParameter(
      hasType(qualType(anyOf(DataPlaneType, references(DataPlaneType)))));
  // Exemptions keep the rule honest: *Reference* functions are the
  // scalar oracle the spec is checked against, and floating-point
  // returns mark quality metrics (MSE/PSNR) whose result is reported,
  // not published.
  const auto KernelFunction =
      functionDecl(TakesDataPlane,
                   unless(returns(qualType(realFloatingPointType()))),
                   unless(matchesName(".*[rR]eference.*")));
  Finder->addMatcher(
      binaryOperator(hasAnyOperatorName("+=", "-="),
                     hasLHS(expr(hasType(realFloatingPointType()))),
                     anyOf(hasAncestor(forStmt()), hasAncestor(whileStmt()),
                           hasAncestor(cxxForRangeStmt()),
                           hasAncestor(doStmt())),
                     forFunction(KernelFunction))
          .bind("accumulate"),
      this);
}

void
RawFloatInKernelCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Accumulate =
      Result.Nodes.getNodeAs<BinaryOperator>("accumulate");
  if (Accumulate == nullptr)
    return;
  // src/simd/ defines the arithmetic specification; it is the one
  // place raw lane arithmetic belongs.
  const SourceManager &SM = *Result.SourceManager;
  const StringRef File =
      SM.getFilename(SM.getExpansionLoc(Accumulate->getOperatorLoc()));
  if (File.contains("/simd/"))
    return;
  diag(Accumulate->getOperatorLoc(),
       "raw floating-point accumulation in a kernel loop; the SIMD ops "
       "table is the arithmetic specification (8-lane FMA, fixed "
       "pairwise reduction), and a hand-rolled loop forks it — gather "
       "the operands and call anytime::simd::ops().dotPadded8 (or a "
       "sibling) instead")
      << Accumulate->getSourceRange();
}

} // namespace clang::tidy::anytime
