//===--- RawFloatInKernelCheck.h --------------------------------*- C++ -*-===//
//
// anytime-raw-float-in-kernel
//
// The SIMD dispatch layer (src/simd/, DESIGN.md section 15) is not an
// optimization detail: the ops table IS the arithmetic specification.
// Every backend reproduces the same 8-lane FMA grouping and the same
// fixed pairwise reduction, which is what keeps published pixels
// bit-identical across ISAs and worker counts. A hand-written
// `acc += tap * pixel` loop in kernel code re-derives the arithmetic
// with a different association order, silently forking the spec.
//
// This check flags floating-point accumulation loops (+=, -= in a
// loop) in data-plane functions — functions taking an anytime::Image
// or anytime::ApproxStorage — that are not themselves part of the
// spec: scalar reference implementations (anything named *Reference*)
// and metric-style folds returning floating point (PSNR/MSE report
// quality, they don't produce published pixels) are exempt, as is
// everything under src/simd/ which defines the spec. Route the math
// through anytime::simd::ops() instead.
//
//===----------------------------------------------------------------------===//

#ifndef ANYTIME_LINT_RAW_FLOAT_IN_KERNEL_CHECK_H
#define ANYTIME_LINT_RAW_FLOAT_IN_KERNEL_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::anytime {

class RawFloatInKernelCheck : public ClangTidyCheck {
public:
  RawFloatInKernelCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace clang::tidy::anytime

#endif // ANYTIME_LINT_RAW_FLOAT_IN_KERNEL_CHECK_H
