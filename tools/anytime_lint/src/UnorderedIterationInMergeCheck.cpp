//===--- UnorderedIterationInMergeCheck.cpp -------------------------------===//

#include "UnorderedIterationInMergeCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::anytime {

namespace {

/** Loop sits in code that must replay bit-identically: a Stage method,
 *  a lambda written inline into runPartitionedSweep(), or a function
 *  whose name marks it as a merge/combine step. */
auto
inDeterministicContext()
{
  return anyOf(
      hasAncestor(cxxMethodDecl(ofClass(cxxRecordDecl(
          isSameOrDerivedFrom(hasName("::anytime::Stage")))))),
      hasAncestor(callExpr(callee(functionDecl(
          hasName("::anytime::runPartitionedSweep"))))),
      forFunction(functionDecl(matchesName(
          ".*([mM]erge|[cC]ombine|[rR]educe[A-Z_]).*"))));
}

} // namespace

void
UnorderedIterationInMergeCheck::registerMatchers(MatchFinder *Finder) {
  const auto UnorderedContainer = qualType(hasUnqualifiedDesugaredType(
      recordType(hasDeclaration(namedDecl(matchesName(
          "^::std::unordered_(map|set|multimap|multiset)$"))))));
  Finder->addMatcher(
      cxxForRangeStmt(
          hasRangeInit(expr(hasType(UnorderedContainer))),
          inDeterministicContext())
          .bind("loop"),
      this);
}

void
UnorderedIterationInMergeCheck::check(
    const MatchFinder::MatchResult &Result) {
  const auto *Loop = Result.Nodes.getNodeAs<CXXForRangeStmt>("loop");
  if (Loop == nullptr)
    return;
  diag(Loop->getForLoc(),
       "iterating an unordered container in a stage body or merge; the "
       "visit order varies with hashing and insertion history, so the "
       "result is not bit-identical across worker counts — iterate a "
       "sorted view (std::map, std::vector, or sorted keys) instead")
      << Loop->getSourceRange();
}

} // namespace clang::tidy::anytime
