//===--- UnorderedIterationInMergeCheck.h -----------------------*- C++ -*-===//
//
// anytime-unordered-iteration-in-merge
//
// The bit-identity contract (paper Section IV-C1, DESIGN.md section 9)
// requires every published version to equal the single-worker scalar
// run. Stage bodies and leader merges therefore must not let their
// result depend on any order the language leaves unspecified — and
// iteration over std::unordered_map / std::unordered_set is exactly
// that: the visit order depends on hash seeding, bucket count, and
// insertion history, all of which vary across worker counts and runs.
// Floating-point merges are not associative, so "same elements, any
// order" is NOT equivalence here.
//
// This check flags range-for loops whose range is an unordered
// container when the loop sits in deterministic context: a Stage
// method, a runPartitionedSweep callback, or a function whose name
// marks it as a merge. Use std::map/std::vector (or sort the keys
// first) in these paths.
//
//===----------------------------------------------------------------------===//

#ifndef ANYTIME_LINT_UNORDERED_ITERATION_IN_MERGE_CHECK_H
#define ANYTIME_LINT_UNORDERED_ITERATION_IN_MERGE_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::anytime {

class UnorderedIterationInMergeCheck : public ClangTidyCheck {
public:
  UnorderedIterationInMergeCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace clang::tidy::anytime

#endif // ANYTIME_LINT_UNORDERED_ITERATION_IN_MERGE_CHECK_H
