#!/usr/bin/env python3
"""Tests for the fixture grader itself (clang-free).

The grader is the arbiter of every lint fixture test, so it gets its
own coverage: marker parsing, diagnostic-line extraction, the
unified-diff failure report, and an end-to-end run against a stub
clang-tidy executable. Written as unittest.TestCase so it runs under
both ``python3 test_run_fixture.py`` (ctest) and pytest.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import run_fixture  # noqa: E402

CHECK = "anytime-example-check"

STUB_CLANG_TIDY = """#!/usr/bin/env python3
import sys
fixture = next(a for a in sys.argv[1:] if a.endswith(".cpp"))
print(f"{fixture}:3:5: warning: seeded diagnostic [anytime-example-check]")
print(f"{fixture}:9:1: warning: seeded diagnostic [anytime-example-check]")
"""


class ExpectedLinesTest(unittest.TestCase):
    def test_markers_map_to_line_numbers(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            fixture = Path(tmp) / "sample.cpp"
            fixture.write_text(
                "int a;\n"
                "int b; // expect-warning\n"
                "int c;\n"
                "int d; // expect-warning\n"
            )
            self.assertEqual(run_fixture.expected_lines(fixture), {2, 4})

    def test_unmarked_fixture_is_negative(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            fixture = Path(tmp) / "clean.cpp"
            fixture.write_text("int a;\nint b;\n")
            self.assertEqual(run_fixture.expected_lines(fixture), set())


class ReportedLinesTest(unittest.TestCase):
    def test_extracts_matching_check_only(self) -> None:
        output = (
            "/x/f.cpp:3:5: warning: bad thing [anytime-example-check]\n"
            "/x/f.cpp:7:5: warning: other [some-other-check]\n"
            "/x/other.cpp:9:5: warning: elsewhere [anytime-example-check]\n"
        )
        lines = run_fixture.reported_lines(output, Path("/x/f.cpp"), CHECK)
        self.assertEqual(lines, {3})

    def test_notes_and_errors_ignored(self) -> None:
        output = (
            "/x/f.cpp:3:5: note: context [anytime-example-check]\n"
            "/x/f.cpp:4:5: error: boom\n"
        )
        lines = run_fixture.reported_lines(output, Path("/x/f.cpp"), CHECK)
        self.assertEqual(lines, set())


class GradeTest(unittest.TestCase):
    def test_exact_match_passes(self) -> None:
        ok, report = run_fixture.grade({3, 9}, {3, 9}, CHECK, "f.cpp")
        self.assertTrue(ok)
        self.assertIn("PASS", report)
        self.assertIn("positive", report)

    def test_negative_match_passes(self) -> None:
        ok, report = run_fixture.grade(set(), set(), CHECK, "f.cpp")
        self.assertTrue(ok)
        self.assertIn("negative", report)

    def test_failure_report_is_a_unified_diff(self) -> None:
        ok, report = run_fixture.grade({3, 9}, {3, 12}, CHECK, "f.cpp")
        self.assertFalse(ok)
        self.assertIn("--- f.cpp (expected diagnostics)", report)
        self.assertIn("+++ f.cpp (actual diagnostics)", report)
        self.assertIn(f"-line 9: warning [{CHECK}]", report)
        self.assertIn(f"+line 12: warning [{CHECK}]", report)
        self.assertIn("stayed silent on marked line(s) [9]", report)
        self.assertIn("fired on unmarked line(s) [12]", report)


class EndToEndTest(unittest.TestCase):
    """Drive run_fixture.py as a subprocess against a stub clang-tidy."""

    def run_grader(self, fixture_text: str) -> subprocess.CompletedProcess:
        with tempfile.TemporaryDirectory() as tmp:
            stub = Path(tmp) / "stub-clang-tidy"
            stub.write_text(STUB_CLANG_TIDY)
            stub.chmod(0o755)
            fixture = Path(tmp) / "fixture.cpp"
            fixture.write_text(fixture_text)
            return subprocess.run(
                [
                    sys.executable,
                    str(Path(__file__).resolve().parent / "run_fixture.py"),
                    "--clang-tidy",
                    str(stub),
                    "--plugin",
                    "unused.so",
                    "--check",
                    CHECK,
                    "--fixture",
                    str(fixture),
                ],
                capture_output=True,
                text=True,
                check=False,
            )

    def test_matching_fixture_passes(self) -> None:
        lines = ["int filler;"] * 10
        lines[2] = "int bad1; // expect-warning"
        lines[8] = "int bad2; // expect-warning"
        result = self.run_grader("\n".join(lines) + "\n")
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("PASS", result.stdout)

    def test_mismatch_fails_with_diff(self) -> None:
        lines = ["int filler;"] * 10
        lines[4] = "int bad; // expect-warning"
        result = self.run_grader("\n".join(lines) + "\n")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("--- fixture.cpp (expected diagnostics)", result.stdout)
        self.assertIn("-line 5: warning", result.stdout)
        self.assertIn("+line 3: warning", result.stdout)


if __name__ == "__main__":
    unittest.main()
