#!/usr/bin/env python3
"""Sanity-check the anytime_verify wiring without needing clang.

Runs on every platform (ctest label ``verify``) so a toolchain without
LLVM dev headers still catches configuration drift: sources present,
fixtures paired, golden list well-formed, CI job wired.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

FIXTURE_STEMS = ("lockcycle", "taint", "rawfloat")
RULES = (
    "anytime-verify-lock-order",
    "anytime-verify-determinism",
    "anytime-verify-simd-spec",
)
PROMETHEUS_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root", required=True, type=Path)
    args = parser.parse_args()
    root = args.repo_root
    tool = root / "tools/anytime_verify"
    failures = []

    for source in (
        "src/AnytimeVerify.cpp",
        "src/Collector.cpp",
        "src/Collector.h",
        "src/WholeProgram.h",
        "src/Sarif.h",
    ):
        if not (tool / source).is_file():
            failures.append(f"missing source {source}")

    main_text = (tool / "src/AnytimeVerify.cpp").read_text() \
        if (tool / "src/AnytimeVerify.cpp").is_file() else ""
    collector_text = (tool / "src/Collector.cpp").read_text() \
        if (tool / "src/Collector.cpp").is_file() else ""
    for rule in RULES:
        if rule not in main_text + collector_text:
            failures.append(f"rule {rule} not emitted by the tool sources")

    fixture_dir = tool / "fixtures"
    for stem in FIXTURE_STEMS:
        for kind in ("positive", "negative"):
            fixture = fixture_dir / f"{stem}_{kind}.cpp"
            if not fixture.is_file():
                failures.append(f"missing fixture {fixture.name}")
                continue
            has_expectations = "// verify-expect:" in fixture.read_text()
            if kind == "positive" and not has_expectations:
                failures.append(
                    f"{fixture.name} has no // verify-expect: lines"
                )
            if kind == "negative" and has_expectations:
                failures.append(
                    f"{fixture.name} is a negative fixture but declares "
                    "expectations"
                )

    golden = tool / "metrics_golden.txt"
    if golden.is_file():
        for line in golden.read_text().splitlines():
            name = line.strip()
            if not name or name.startswith("#"):
                continue
            if not PROMETHEUS_NAME.match(name):
                failures.append(
                    f"metrics_golden.txt entry '{name}' is not a valid "
                    "Prometheus metric name"
                )
    else:
        failures.append("metrics_golden.txt missing")

    ci = root / ".github/workflows/ci.yml"
    if ci.is_file() and "anytime_verify" not in ci.read_text():
        failures.append("CI workflow does not run anytime_verify")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"PASS: verify tool wired ({len(FIXTURE_STEMS)} fixture pairs, "
        f"{len(RULES)} rules, golden list valid)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
