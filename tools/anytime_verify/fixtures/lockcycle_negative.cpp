// Fixture: the lock-order pass must come back clean. Both entry
// points follow one global order (Scheduler::mutex before
// Journal::mutex), a hand-off releases before re-acquiring, and a
// call made while holding a lock only reaches a function whose lock
// sits later in the order (advisory edge, same direction).

#include "verify_stub.hpp"

namespace demo {

struct Scheduler {
  anytime::Mutex mutex;
  int pending = 0;
};

struct Journal {
  anytime::Mutex mutex;
  int entries = 0;
};

void
appendEntry(Journal &journal) {
  anytime::MutexLock journalLock(journal.mutex);
  ++journal.entries;
}

// Scheduler -> Journal, lexically.
void
recordDispatch(Scheduler &scheduler, Journal &journal) {
  anytime::MutexLock schedulerLock(scheduler.mutex);
  ++scheduler.pending;
  anytime::MutexLock journalLock(journal.mutex);
  ++journal.entries;
}

// Scheduler -> Journal again, this time through a call while held:
// same direction, so the advisory edge closes no cycle.
void
dispatchAndLog(Scheduler &scheduler, Journal &journal) {
  anytime::MutexLock schedulerLock(scheduler.mutex);
  ++scheduler.pending;
  appendEntry(journal);
}

// Hand-off: Journal released before Scheduler is acquired — no edge.
void
replayJournal(Journal &journal, Scheduler &scheduler) {
  anytime::MutexLock journalLock(journal.mutex);
  --journal.entries;
  journalLock.unlock();
  anytime::MutexLock schedulerLock(scheduler.mutex);
  --scheduler.pending;
}

} // namespace demo

int
main() {
  demo::Scheduler scheduler;
  demo::Journal journal;
  demo::recordDispatch(scheduler, journal);
  demo::dispatchAndLog(scheduler, journal);
  demo::replayJournal(journal, scheduler);
  return scheduler.pending + journal.entries;
}
