// Fixture: the lock-order pass must report a cycle. Two entry points
// acquire the same pair of class mutexes in opposite orders — the
// canonical ABBA deadlock, invisible to per-function -Wthread-safety
// but a 2-cycle in the global acquisition graph.
// verify-expect: anytime-verify-lock-order

#include "verify_stub.hpp"

namespace demo {

struct Scheduler {
  anytime::Mutex mutex;
  int pending = 0;
};

struct Journal {
  anytime::Mutex mutex;
  int entries = 0;
};

// Path 1: Scheduler::mutex, then Journal::mutex.
void
recordDispatch(Scheduler &scheduler, Journal &journal) {
  anytime::MutexLock schedulerLock(scheduler.mutex);
  ++scheduler.pending;
  anytime::MutexLock journalLock(journal.mutex);
  ++journal.entries;
}

// Path 2: Journal::mutex, then Scheduler::mutex. Two threads taking
// these paths concurrently deadlock.
void
replayJournal(Journal &journal, Scheduler &scheduler) {
  anytime::MutexLock journalLock(journal.mutex);
  --journal.entries;
  anytime::MutexLock schedulerLock(scheduler.mutex);
  --scheduler.pending;
}

} // namespace demo

int
main() {
  demo::Scheduler scheduler;
  demo::Journal journal;
  demo::recordDispatch(scheduler, journal);
  demo::replayJournal(journal, scheduler);
  return scheduler.pending + journal.entries;
}
