// Fixture: the SIMD-spec pass must come back clean. Reference
// implementations are exempt by name, metric helpers are exempt by
// their floating-point return type, integer accumulation is always
// fine, and float math without a data-plane parameter is outside the
// kernel contract.

#include "verify_stub.hpp"

#include <cstddef>
#include <cstdint>

namespace demo {

// Exempt: *Reference* functions define the scalar ground truth the
// SIMD paths are checked against.
std::uint8_t
convolveRowReference(const anytime::GrayImage &src, const float *taps,
                     std::size_t count) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < count; ++i) {
    acc += taps[i] * static_cast<float>(src.at(static_cast<int>(i), 0));
  }
  return static_cast<std::uint8_t>(acc);
}

// Exempt: returns a floating-point metric (PSNR-style helpers), not
// pixel data.
double
meanValue(const anytime::GrayImage &src, std::size_t count) {
  double sum = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    sum += static_cast<double>(src.at(static_cast<int>(i), 0));
  }
  return count ? sum / static_cast<double>(count) : 0.0;
}

// Integer accumulation in a kernel is always allowed.
unsigned
pixelSum(const anytime::GrayImage &src, std::size_t count) {
  unsigned sum = 0;
  for (std::size_t i = 0; i < count; ++i) {
    sum += src.at(static_cast<int>(i), 0);
  }
  return sum;
}

// No data-plane parameter: plain numeric code, not a kernel.
float
taperWeight(const float *weights, std::size_t count) {
  float total = 0.0f;
  for (std::size_t i = 0; i < count; ++i) {
    total += weights[i];
  }
  return total;
}

} // namespace demo

int
main() {
  anytime::GrayImage image(4, 1);
  const float taps[4] = {0.25f, 0.25f, 0.25f, 0.25f};
  return demo::convolveRowReference(image, taps, 4) +
         static_cast<int>(demo::meanValue(image, 4)) +
         static_cast<int>(demo::pixelSum(image, 4)) +
         static_cast<int>(demo::taperWeight(taps, 4));
}
