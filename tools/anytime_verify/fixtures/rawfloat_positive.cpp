// Fixture: the SIMD-spec pass must flag raw floating-point
// accumulation inside kernel loops. Both functions take a data-plane
// type and fold floats with +=/-= directly instead of going through
// the ops table — exactly the pattern that diverges between scalar
// and vector builds.
// verify-expect: anytime-verify-simd-spec

#include "verify_stub.hpp"

#include <cstddef>
#include <cstdint>

namespace demo {

// Raw float accumulation over an Image row.
std::uint8_t
applyTaps(const anytime::GrayImage &src, const float *taps,
          std::size_t count) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < count; ++i) {
    acc += taps[i] * static_cast<float>(src.at(static_cast<int>(i), 0));
  }
  if (acc < 0.0f)
    acc = 0.0f;
  if (acc > 255.0f)
    acc = 255.0f;
  return static_cast<std::uint8_t>(acc);
}

// Same violation through ApproxStorage and a while loop with -=.
std::uint8_t
foldStorage(const anytime::ApproxStorage<std::uint8_t> &storage,
            std::size_t count) {
  float bias = 255.0f;
  std::size_t index = 0;
  while (index < count) {
    bias -= 0.5f * static_cast<float>(storage.read(index));
    ++index;
  }
  return static_cast<std::uint8_t>(bias);
}

} // namespace demo

int
main() {
  anytime::GrayImage image(4, 1);
  const float taps[4] = {0.25f, 0.25f, 0.25f, 0.25f};
  anytime::ApproxStorage<std::uint8_t> storage(4);
  return demo::applyTaps(image, taps, 4) +
         static_cast<int>(demo::foldStorage(storage, 4));
}
