// Fixture: the determinism pass must come back clean. Monotonic time
// for scheduling, randomness confined to code that never reaches
// publish, hash-order iteration on an export path, and a NOLINT'd
// deliberate exception are all allowed.

#include "verify_stub.hpp"

#include <chrono>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

namespace demo {

// steady_clock is monotonic and drives scheduling decisions, never
// published values — deliberately not a taint source.
class DeadlineStage : public anytime::Stage {
public:
  void
  run(anytime::StageContext &ctx) override {
    const auto start = std::chrono::steady_clock::now();
    while (ctx.checkpoint() &&
           std::chrono::steady_clock::now() - start <
               std::chrono::milliseconds(1)) {
      ++steps_;
    }
  }

private:
  unsigned long steps_ = 0;
};

// Randomness is fine in code that cannot reach a published version —
// load generators, shuffled test inputs.
std::vector<int>
randomWorkload(std::size_t count) {
  std::vector<int> requests;
  for (std::size_t i = 0; i < count; ++i) {
    requests.push_back(std::rand());
  }
  return requests;
}

// Hash-order iteration on the export path: debug output, not a
// published version.
std::size_t
exportCounters(const std::unordered_map<std::string, long> &counters) {
  std::size_t emitted = 0;
  for (const auto &entry : counters) {
    emitted += entry.first.size();
  }
  return emitted;
}

// Deterministic publish chain for contrast.
void
publishSum(anytime::VersionedBuffer<long> &buffer,
           const std::vector<long> &values) {
  long sum = 0;
  for (const long value : values) {
    sum += value;
  }
  buffer.publish(sum, true);
}

} // namespace demo

int
main() {
  demo::DeadlineStage stage;
  anytime::StageContext ctx;
  stage.run(ctx);
  const std::vector<int> load = demo::randomWorkload(4);
  std::unordered_map<std::string, long> counters;
  anytime::VersionedBuffer<long> buffer;
  demo::publishSum(buffer, {1, 2, 3});
  return static_cast<int>(buffer.latest()) + load.empty() +
         static_cast<int>(demo::exportCounters(counters));
}
