// Fixture: the determinism pass must flag nondeterminism reaching a
// published version, through all three sensitivity routes: a Stage
// body, a function that publishes directly, and a helper that only
// reaches publish transitively through the call graph.
// verify-expect: anytime-verify-determinism

#include "verify_stub.hpp"

#include <cstdlib>
#include <unordered_map>

namespace demo {

// Route 1: a PRNG call inside a Stage-derived run() — stage bodies
// must replay bit-identically at any worker count.
class JitterStage : public anytime::Stage {
public:
  void
  run(anytime::StageContext &ctx) override {
    (void)ctx;
    seed_ += static_cast<unsigned long>(std::rand());
  }

private:
  unsigned long seed_ = 0;
};

// Route 2: hash-order iteration in a function that publishes the
// accumulated value directly.
void
publishHistogram(anytime::VersionedBuffer<long> &buffer,
                 const std::unordered_map<int, long> &bins) {
  long total = 0;
  for (const auto &entry : bins) {
    total ^= entry.second + total;
  }
  buffer.publish(total, false);
}

// Route 3: the source sits two calls away from publish; only the
// whole-program call graph connects them.
long
sampleNoise() {
  return std::rand();
}

long
buildValue() {
  return sampleNoise() + 1;
}

void
publishValue(anytime::VersionedBuffer<long> &buffer) {
  buffer.publish(buildValue(), true);
}

} // namespace demo

int
main() {
  demo::JitterStage stage;
  anytime::StageContext ctx;
  stage.run(ctx);
  anytime::VersionedBuffer<long> buffer;
  std::unordered_map<int, long> bins;
  demo::publishHistogram(buffer, bins);
  demo::publishValue(buffer);
  return static_cast<int>(buffer.latest() & 1);
}
