// Minimal stand-ins for the anytime types anytime_verify keys on
// (anytime::MutexLock for the lock-order pass, anytime::Stage /
// VersionedBuffer::publish for the determinism pass, anytime::Image /
// ApproxStorage for the simd-spec pass). Shapes mirror
// src/support/sync.hpp, src/core/buffer.hpp, src/image/image.hpp —
// hermetic so fixtures parse with no repo include paths.

#ifndef ANYTIME_VERIFY_FIXTURES_VERIFY_STUB_HPP
#define ANYTIME_VERIFY_FIXTURES_VERIFY_STUB_HPP

#include <cstddef>
#include <cstdint>
#include <memory>

namespace anytime {

class Mutex {
public:
  void lock() {}
  void unlock() {}
};

class MutexLock {
public:
  explicit MutexLock(Mutex &mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() { unlock(); }
  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;
  void lock() { mutex_.lock(); }
  void unlock() { mutex_.unlock(); }

private:
  Mutex &mutex_;
};

class StageContext {
public:
  bool checkpoint() { return true; }
  unsigned workerId() const { return 0; }
};

class Stage {
public:
  virtual ~Stage() = default;
  virtual void run(StageContext &ctx) = 0;
};

template <typename T>
class VersionedBuffer {
public:
  void publish(const T &value, bool final) {
    latest_ = value;
    final_ = final;
    ++version_;
  }
  void publishShared(std::shared_ptr<const T> value, bool final) {
    latest_ = *value;
    final_ = final;
    ++version_;
  }
  const T &latest() const { return latest_; }

private:
  T latest_{};
  bool final_ = false;
  std::uint64_t version_ = 0;
};

template <typename T>
class Image {
public:
  Image(int width, int height)
      : width_(width), height_(height),
        data_(new T[static_cast<unsigned>(width * height)]()) {}
  int width() const { return width_; }
  int height() const { return height_; }
  T &at(int x, int y) { return data_[y * width_ + x]; }
  const T &at(int x, int y) const { return data_[y * width_ + x]; }

private:
  int width_ = 0;
  int height_ = 0;
  std::unique_ptr<T[]> data_;
};

using GrayImage = Image<std::uint8_t>;

template <typename T>
class ApproxStorage {
public:
  explicit ApproxStorage(std::size_t size) : data_(new T[size]()) {}
  T read(std::size_t index) const { return data_[index]; }
  void write(std::size_t index, T value) { data_[index] = value; }

private:
  std::unique_ptr<T[]> data_;
};

} // namespace anytime

#endif // ANYTIME_VERIFY_FIXTURES_VERIFY_STUB_HPP
