#!/usr/bin/env python3
"""Cross-check the three string registries the runtime keys on.

These registries are stringly-typed contracts the compiler cannot see,
so they drift silently; this checker runs clang-free (ctest label
``verify``) and inside the CI verify job:

- **Fault sites** — every ``ANYTIME_FAULT_POINT``/``corruptSeed`` base
  string wired into src/ must be listed in the fault.hpp doc comment
  (the operator-facing spec) and exercised somewhere under tests/.
- **Metric names** — every ``anytime_*`` literal in src/ must appear in
  metrics_golden.txt (and vice versa) and be a valid Prometheus metric
  name; a typo'd or orphaned metric breaks dashboards silently.
- **Trace spans** — async spans pair by name; a ``traceAsyncBegin``
  name with no matching ``traceAsyncEnd`` (or the reverse) leaves
  open-ended spans in every exported trace.

``--fake-site`` injects a pretend wired-but-unregistered fault site so
the drift regression test can assert the checker actually fails.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

FAULT_RULE = "anytime-verify-fault-registry"
METRIC_RULE = "anytime-verify-metric-registry"
TRACE_RULE = "anytime-verify-trace-registry"

PROMETHEUS_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

# Call sites may break the line between '(' and the name literal.
WIRED_SITE = re.compile(
    r'(?:ANYTIME_FAULT_POINT\(|corruptSeed\()\s*"([a-z.]+)"', re.S
)
METRIC_LITERAL = re.compile(r'"(anytime_[a-z0-9_]+)"')
ASYNC_BEGIN = re.compile(r'traceAsyncBegin\(\s*"([^"]+)"', re.S)
ASYNC_END = re.compile(r'traceAsyncEnd\(\s*"([^"]+)"', re.S)
DOC_SITE = re.compile(r"`([a-z.]+)(?::<[a-z]+>)?`")


def finding(rule: str, message: str, file: str, line: int = 1) -> dict:
    return {"rule": rule, "message": message, "file": file, "line": line}


def iter_sources(root: Path, subdir: str) -> list[Path]:
    base = root / subdir
    if not base.is_dir():
        return []
    return sorted(
        p
        for p in base.rglob("*")
        if p.suffix in {".cpp", ".hpp", ".h", ".cc"} and p.is_file()
    )


def wired_fault_sites(root: Path) -> dict[str, str]:
    """site base -> first file that wires it."""
    sites: dict[str, str] = {}
    for path in iter_sources(root, "src"):
        for match in WIRED_SITE.finditer(path.read_text(errors="replace")):
            sites.setdefault(match.group(1), str(path.relative_to(root)))
    return sites


def documented_fault_sites(root: Path) -> set[str]:
    fault_hpp = root / "src/fault/fault.hpp"
    if not fault_hpp.is_file():
        return set()
    text = fault_hpp.read_text(errors="replace")
    # The spec sentence may wrap across comment lines.
    start_match = re.search(r"Sites wired\s*\*?\s*into the runtime:", text)
    if start_match is None:
        return set()
    end = text.find("Kinds map onto", start_match.end())
    if end < 0:
        return set()
    return {
        m.group(1) for m in DOC_SITE.finditer(text[start_match.end() : end])
    }


def check_fault_sites(root: Path, fake_site: str | None) -> list[dict]:
    findings = []
    wired = wired_fault_sites(root)
    if fake_site:
        wired.setdefault(fake_site, "<injected by --fake-site>")
    documented = documented_fault_sites(root)
    test_text = "\n".join(
        p.read_text(errors="replace") for p in iter_sources(root, "tests")
    )
    for site, where in sorted(wired.items()):
        if site not in documented:
            findings.append(
                finding(
                    FAULT_RULE,
                    f"fault site '{site}' is wired in {where} but not "
                    "listed in the fault.hpp site spec; operators "
                    "cannot target what the doc does not name",
                    "src/fault/fault.hpp",
                )
            )
        if site not in test_text:
            findings.append(
                finding(
                    FAULT_RULE,
                    f"fault site '{site}' (wired in {where}) is never "
                    "exercised under tests/; an untested injection "
                    "site is dead chaos coverage",
                    where,
                )
            )
    for site in sorted(documented - set(wired)):
        findings.append(
            finding(
                FAULT_RULE,
                f"fault site '{site}' is documented in fault.hpp but "
                "no longer wired anywhere in src/",
                "src/fault/fault.hpp",
            )
        )
    return findings


def check_metric_names(root: Path) -> list[dict]:
    findings = []
    golden_path = root / "tools/anytime_verify/metrics_golden.txt"
    golden = set()
    if golden_path.is_file():
        golden = {
            line.strip()
            for line in golden_path.read_text().splitlines()
            if line.strip() and not line.startswith("#")
        }
    else:
        findings.append(
            finding(METRIC_RULE, "metrics_golden.txt is missing", ".")
        )
    used: dict[str, str] = {}
    for path in iter_sources(root, "src"):
        for match in METRIC_LITERAL.finditer(
            path.read_text(errors="replace")
        ):
            used.setdefault(match.group(1), str(path.relative_to(root)))
    for name, where in sorted(used.items()):
        if not PROMETHEUS_NAME.match(name):
            findings.append(
                finding(
                    METRIC_RULE,
                    f"metric '{name}' in {where} is not a valid "
                    "Prometheus metric name",
                    where,
                )
            )
        if name not in golden:
            findings.append(
                finding(
                    METRIC_RULE,
                    f"metric '{name}' in {where} is not in "
                    "metrics_golden.txt; add it (dashboards key on "
                    "the golden list)",
                    where,
                )
            )
    for name in sorted(golden - set(used)):
        findings.append(
            finding(
                METRIC_RULE,
                f"metric '{name}' is in metrics_golden.txt but no "
                "longer emitted anywhere in src/",
                "tools/anytime_verify/metrics_golden.txt",
            )
        )
    return findings


def check_trace_spans(root: Path) -> list[dict]:
    findings = []
    begins: dict[str, str] = {}
    ends: dict[str, str] = {}
    for path in iter_sources(root, "src"):
        if path.name in {"trace.hpp", "trace.cpp"}:
            continue  # the facility itself, not a span site
        text = path.read_text(errors="replace")
        rel = str(path.relative_to(root))
        for match in ASYNC_BEGIN.finditer(text):
            begins.setdefault(match.group(1), rel)
        for match in ASYNC_END.finditer(text):
            ends.setdefault(match.group(1), rel)
    for name, where in sorted(begins.items()):
        if name not in ends:
            findings.append(
                finding(
                    TRACE_RULE,
                    f"async span '{name}' begins in {where} but never "
                    "ends; every exported trace shows it open-ended",
                    where,
                )
            )
    for name, where in sorted(ends.items()):
        if name not in begins:
            findings.append(
                finding(
                    TRACE_RULE,
                    f"async span '{name}' ends in {where} but never "
                    "begins",
                    where,
                )
            )
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root", required=True, type=Path)
    parser.add_argument(
        "--fake-site",
        help="pretend this fault site is wired (drift regression test)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        help="also write findings as a JSON array (for SARIF merging)",
    )
    args = parser.parse_args()
    root = args.repo_root.resolve()

    findings = (
        check_fault_sites(root, args.fake_site)
        + check_metric_names(root)
        + check_trace_spans(root)
    )
    for entry in findings:
        print(
            f"{entry['file']}:{entry['line']}:1: warning: "
            f"{entry['message']} [{entry['rule']}]"
        )
    if args.json is not None:
        args.json.write_text(json.dumps(findings, indent=2) + "\n")
    if findings:
        print(f"FAIL: {len(findings)} registry finding(s)")
        return 1
    print("PASS: fault sites, metric names, and trace spans consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
