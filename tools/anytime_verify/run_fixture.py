#!/usr/bin/env python3
"""Run anytime_verify over one fixture TU and grade the outcome.

Whole-program findings (a lock cycle, a taint path) do not pin to one
marked line the way per-TU tidy diagnostics do, so verify fixtures
declare expectations at file level: each ``// verify-expect: <rule>``
line requires at least one finding for that rule, and a fixture with
no expectations must come back completely clean (exit 0, no
warnings). On failure the report shows the expected-vs-actual rule
sets plus the tool output.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

EXPECT = re.compile(r"^//\s*verify-expect:\s*([a-z-]+)\s*$", re.M)
FINDING = re.compile(r": warning: .*\[([a-z-]+)\]$", re.M)


def expected_rules(fixture: Path) -> set[str]:
    return set(EXPECT.findall(fixture.read_text()))


def reported_rules(output: str) -> set[str]:
    return set(FINDING.findall(output))


def grade(
    expected: set[str], reported: set[str], fixture_name: str
) -> tuple[bool, str]:
    if expected == reported:
        kind = "positive" if expected else "negative"
        return True, (
            f"PASS: anytime_verify on {fixture_name} ({kind}, rules: "
            f"{sorted(expected) or 'none'})"
        )
    lines = []
    for rule in sorted(expected - reported):
        lines.append(
            f"FAIL: expected a [{rule}] finding on {fixture_name}, "
            "got none"
        )
    for rule in sorted(reported - expected):
        lines.append(
            f"FAIL: unexpected [{rule}] finding on {fixture_name}"
        )
    return False, "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True, type=Path)
    parser.add_argument("--fixture", required=True, type=Path)
    args = parser.parse_args()

    if not args.binary.is_file():
        print(f"SKIP: anytime_verify binary not found at {args.binary}")
        return 0

    result = subprocess.run(
        [
            str(args.binary),
            str(args.fixture),
            "--",
            "-std=c++20",
            f"-I{args.fixture.parent}",
        ],
        capture_output=True,
        text=True,
        check=False,
    )
    output = result.stdout + result.stderr
    if result.returncode == 2:
        print(output)
        print(f"FAIL: anytime_verify could not parse {args.fixture.name}")
        return 1

    expected = expected_rules(args.fixture)
    reported = reported_rules(output)
    ok, report = grade(expected, reported, args.fixture.name)
    if not ok:
        print(output)
    print(report)
    if ok and bool(expected) != (result.returncode == 1):
        print(
            f"FAIL: exit code {result.returncode} disagrees with "
            f"{'expected findings' if expected else 'a clean fixture'}"
        )
        return 1
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
