#!/usr/bin/env python3
"""Drive the whole-program verification for CI.

Runs the anytime_verify binary over every src/ TU in the compile
database, then the clang-free registry cross-checks, and merges both
result sets into one SARIF file for upload. Self-skips (exit 0 with a
one-line SKIP) when the binary was not built — hosts without LLVM dev
headers still run the registry half via ctest.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path


def list_src_tus(build_dir: Path) -> list[str]:
    database = build_dir / "compile_commands.json"
    if not database.is_file():
        print(f"FAIL: {database} not found (configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON)")
        raise SystemExit(1)
    entries = json.loads(database.read_text())
    files = sorted(
        {
            entry["file"]
            for entry in entries
            if "/src/" in entry["file"] and entry["file"].endswith(".cpp")
        }
    )
    if not files:
        print("FAIL: no src/ TUs in the compile database")
        raise SystemExit(1)
    return files


def merge_registry_findings(sarif_path: Path, registry: list[dict]) -> None:
    sarif = json.loads(sarif_path.read_text())
    run = sarif["runs"][0]
    rules = run["tool"]["driver"].setdefault("rules", [])
    known = {rule["id"] for rule in rules}
    for entry in registry:
        if entry["rule"] not in known:
            rules.append({"id": entry["rule"]})
            known.add(entry["rule"])
        run.setdefault("results", []).append(
            {
                "ruleId": entry["rule"],
                "level": "error",
                "message": {"text": entry["message"]},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": entry["file"]},
                            "region": {"startLine": max(entry["line"], 1)},
                        }
                    }
                ],
            }
        )
    sarif_path.write_text(json.dumps(sarif, indent=2) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True, type=Path)
    parser.add_argument("--build-dir", required=True, type=Path)
    parser.add_argument("--repo-root", required=True, type=Path)
    parser.add_argument("--sarif", required=True, type=Path)
    parser.add_argument("--lock-dot", required=True, type=Path)
    parser.add_argument("--strict", action="store_true")
    args = parser.parse_args()

    if not args.binary.is_file():
        print(f"SKIP: anytime_verify binary not built ({args.binary})")
        return 0

    files = list_src_tus(args.build_dir)
    command = [
        str(args.binary),
        "-p",
        str(args.build_dir),
        f"--sarif={args.sarif}",
        f"--lock-dot={args.lock_dot}",
        *files,
    ]
    if args.strict:
        command.insert(1, "--strict")
    print(f"anytime_verify: analyzing {len(files)} TUs")
    tool = subprocess.run(command, check=False)
    if tool.returncode == 2:
        print("FAIL: anytime_verify could not parse the tree")
        return 2

    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", delete=False
    ) as handle:
        registry_json = Path(handle.name)
    registry = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve().parent / "registry_check.py"),
            "--repo-root",
            str(args.repo_root),
            "--json",
            str(registry_json),
        ],
        check=False,
    )
    registry_findings = json.loads(registry_json.read_text())
    registry_json.unlink()
    if args.sarif.is_file() and registry_findings:
        merge_registry_findings(args.sarif, registry_findings)

    if tool.returncode != 0 or registry.returncode != 0:
        print(
            f"FAIL: analyzer exit {tool.returncode}, registry exit "
            f"{registry.returncode}"
        )
        return 1
    print("PASS: whole-program verification clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
