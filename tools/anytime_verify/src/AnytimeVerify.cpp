//===--- AnytimeVerify.cpp ------------------------------------------------===//
//
// anytime_verify — whole-program static verification of the three
// contracts the anytime automaton rests on (see DESIGN.md section 16):
//
//  1. lock-order: aggregate every MutexLock nesting across all TUs
//     into one acquisition graph; a cycle breaks the global
//     deadlock-freedom argument that per-function -Wthread-safety
//     cannot make. Definite (lexical) cycles are errors; cycles that
//     need an advisory call-while-held edge are notes (errors under
//     --strict).
//  2. determinism: a nondeterminism source (PRNG, wall clock,
//     thread id, hash-order or pointer-order iteration) inside any
//     function that can reach VersionedBuffer::publish, a Stage body,
//     or a leader merge breaks bit-identity at any worker count.
//  3. simd-spec: raw floating-point accumulation loops in kernel code
//     outside src/simd/ fork the ops-table arithmetic specification.
//
// Usage:
//   anytime_verify -p build/ src/**/*.cpp \
//       --lock-dot=lock_order.dot --sarif=findings.sarif [--strict]
//
// Diagnostics print as `file:line:col: warning: msg [rule]`, the same
// shape clang-tidy emits, so the fixture grader can parse both. Exit
// codes: 0 clean, 1 findings, 2 tooling failure.
//
//===----------------------------------------------------------------------===//

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "clang/Tooling/ArgumentsAdjusters.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"

#include "Collector.h"
#include "Sarif.h"
#include "WholeProgram.h"

namespace {

llvm::cl::OptionCategory
    VerifyCategory("anytime_verify options");
llvm::cl::opt<std::string> LockDotPath(
    "lock-dot",
    llvm::cl::desc("Write the global lock-order graph as Graphviz DOT"),
    llvm::cl::value_desc("path"), llvm::cl::cat(VerifyCategory));
llvm::cl::opt<std::string> SarifPath(
    "sarif", llvm::cl::desc("Write findings as SARIF 2.1.0"),
    llvm::cl::value_desc("path"), llvm::cl::cat(VerifyCategory));
llvm::cl::opt<bool> Strict(
    "strict",
    llvm::cl::desc("Treat advisory (interprocedural) lock-order "
                   "findings as errors"),
    llvm::cl::cat(VerifyCategory));

using anytime_verify::Finding;
using anytime_verify::LockGraph;
using anytime_verify::Program;

std::string joinCycle(const std::vector<std::string> &cycle) {
  std::string text;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (i != 0)
      text += " -> ";
    text += cycle[i];
  }
  return text;
}

void printFinding(const Finding &finding) {
  std::cerr << finding.loc.file << ":" << finding.loc.line << ":"
            << (finding.loc.column > 0 ? finding.loc.column : 1) << ": "
            << (finding.advisory ? "note" : "warning") << ": "
            << finding.message << " [" << finding.rule << "]\n";
}

/// Build the global graph: definite edges from lexical nesting,
/// advisory edges from calling a function that (transitively)
/// acquires M while holding H — implies H -> M at runtime, but
/// through calls the lexical scan cannot see. Kept separate so a
/// cycle that only closes through them is a note, not a hard failure.
LockGraph buildLockGraph(const Program &program) {
  LockGraph graph;
  for (const anytime_verify::LockEdge &edge : program.lockEdges())
    graph.addDefinite(edge);
  const auto transitive = program.transitiveAcquires();
  for (const anytime_verify::CallWhileHeld &call :
       program.callsWhileHeld()) {
    const auto acquiredIt = transitive.find(call.callee);
    if (acquiredIt == transitive.end())
      continue;
    for (const std::string &held : call.held)
      for (const std::string &acquired : acquiredIt->second)
        graph.addAdvisory(held, acquired, call.loc);
  }
  return graph;
}

/// Convert cycles in the graph into findings.
void checkLockOrder(const LockGraph &graph, std::vector<Finding> &findings,
                    bool strict) {
  const std::vector<std::string> definiteCycle = graph.findCycle(false);
  if (!definiteCycle.empty()) {
    Finding finding;
    finding.rule = "anytime-verify-lock-order";
    finding.message =
        "lock acquisition cycle (lexically observed): " +
        joinCycle(definiteCycle) +
        " — two threads taking this loop from different entry points "
        "deadlock; impose one global order";
    finding.loc =
        graph.edgeLoc(definiteCycle[0], definiteCycle[1]);
    findings.push_back(finding);
    return;
  }

  const std::vector<std::string> combinedCycle = graph.findCycle(true);
  if (!combinedCycle.empty()) {
    Finding finding;
    finding.rule = "anytime-verify-lock-order";
    finding.message =
        "potential lock cycle through a call made while holding a "
        "lock: " +
        joinCycle(combinedCycle) +
        " — verify the callee cannot run under this caller's lock, or "
        "restructure";
    finding.loc = graph.edgeLoc(combinedCycle[0], combinedCycle[1]);
    finding.advisory = !strict;
    findings.push_back(finding);
  }
}

void writeFileOrDie(const std::string &path, const std::string &content) {
  std::ofstream out(path);
  out << content;
  if (!out) {
    std::cerr << "anytime_verify: cannot write " << path << "\n";
    std::exit(2);
  }
}

} // namespace

int
main(int argc, const char **argv) {
  auto expectedParser = clang::tooling::CommonOptionsParser::create(
      argc, argv, VerifyCategory);
  if (!expectedParser) {
    llvm::errs() << llvm::toString(expectedParser.takeError()) << "\n";
    return 2;
  }
  clang::tooling::CommonOptionsParser &options = *expectedParser;
  clang::tooling::ClangTool tool(options.getCompilations(),
                                 options.getSourcePathList());
  // Analysis wants the AST, not the project's warning posture; -w
  // also keeps -Werror flags in the compile database from turning
  // unrelated warnings into parse failures.
  tool.appendArgumentsAdjuster(clang::tooling::getInsertArgumentAdjuster(
      "-w", clang::tooling::ArgumentInsertPosition::END));

  Program program;
  const int toolStatus = tool.run(makeCollectorFactory(program).get());
  if (toolStatus != 0) {
    std::cerr << "anytime_verify: failed to parse one or more TUs\n";
    return 2;
  }

  std::vector<Finding> findings;

  // Pass 1: lock order. (The DOT is written even when clean — the
  // artifact documents the current global order.)
  const LockGraph graph = buildLockGraph(program);
  if (!LockDotPath.empty())
    writeFileOrDie(LockDotPath, graph.toDot());
  checkLockOrder(graph, findings, Strict);

  // Pass 2: determinism taint — a source only matters inside the
  // publish-reachable region.
  const std::set<std::string> sensitive = program.publishReachable();
  for (const auto &[function, source] : program.taintCandidates()) {
    if (!sensitive.count(function))
      continue;
    Finding finding = source;
    finding.message += " in '" + function +
                       "', which can reach a published version; "
                       "published values must replay bit-identically";
    findings.push_back(finding);
  }

  // Pass 3: simd-spec (collected unconditionally per TU).
  for (const Finding &finding : program.findings())
    findings.push_back(finding);

  for (const Finding &finding : findings)
    printFinding(finding);
  if (!SarifPath.empty())
    writeFileOrDie(SarifPath, anytime_verify::toSarif(findings, "1.0"));

  int errors = 0;
  for (const Finding &finding : findings)
    errors += finding.advisory ? 0 : 1;
  std::cerr << "anytime_verify: " << program.functions().size()
            << " functions, " << program.lockEdges().size()
            << " lock nestings, " << errors << " error finding(s), "
            << (findings.size() - static_cast<std::size_t>(errors))
            << " advisory\n";
  return errors > 0 ? 1 : 0;
}
