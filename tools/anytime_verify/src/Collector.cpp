//===--- Collector.cpp ----------------------------------------------------===//

#include "Collector.h"

#include <string>
#include <vector>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"

#include "LockNesting.h"

namespace anytime_verify {

namespace {

using anytime_analysis::ActiveLock;
using anytime_analysis::LockNestingScanner;
using anytime_analysis::lockRecordName;

Loc toLoc(clang::SourceLocation location, const clang::SourceManager &SM) {
  const clang::SourceLocation expansion = SM.getExpansionLoc(location);
  Loc loc;
  loc.file = SM.getFilename(expansion).str();
  loc.line = SM.getExpansionLineNumber(expansion);
  loc.column = SM.getExpansionColumnNumber(expansion);
  return loc;
}

/// A finding on a line carrying a NOLINT comment is suppressed, same
/// convention as clang-tidy.
bool lineHasNolint(clang::SourceLocation location,
                   const clang::SourceManager &SM) {
  const clang::SourceLocation expansion = SM.getExpansionLoc(location);
  bool invalid = false;
  const llvm::StringRef buffer = SM.getBufferData(
      SM.getFileID(expansion), &invalid);
  if (invalid)
    return false;
  const unsigned offset = SM.getFileOffset(expansion);
  if (offset >= buffer.size())
    return false;
  const std::size_t lineEnd = buffer.find('\n', offset);
  const std::size_t lineStart = buffer.rfind('\n', offset);
  const std::size_t begin =
      lineStart == llvm::StringRef::npos ? 0 : lineStart + 1;
  const std::size_t end =
      lineEnd == llvm::StringRef::npos ? buffer.size() : lineEnd;
  return buffer.slice(begin, end).contains("NOLINT");
}

bool derivesFromStage(const clang::CXXRecordDecl *record) {
  if (record == nullptr || !record->hasDefinition())
    return false;
  if (lockRecordName(record) == "anytime::Stage")
    return true;
  for (const clang::CXXBaseSpecifier &base :
       record->getDefinition()->bases()) {
    const clang::CXXRecordDecl *baseRecord =
        base.getType()->getAsCXXRecordDecl();
    if (derivesFromStage(baseRecord))
      return true;
  }
  return false;
}

bool nameMarksMerge(llvm::StringRef name) {
  return name.contains("merge") || name.contains("Merge") ||
         name.contains("combine") || name.contains("Combine");
}

const clang::ClassTemplateSpecializationDecl *
rangeSpecialization(const clang::Expr *rangeInit) {
  if (rangeInit == nullptr)
    return nullptr;
  const clang::QualType type = rangeInit->getType();
  if (type.isNull())
    return nullptr;
  const clang::CXXRecordDecl *record =
      type.getNonReferenceType()->getAsCXXRecordDecl();
  if (record == nullptr)
    return nullptr;
  return llvm::dyn_cast<clang::ClassTemplateSpecializationDecl>(record);
}

/// Determinism sources: calls/constructs whose value varies run to
/// run. steady_clock is deliberately absent — monotonic time drives
/// scheduling decisions, never published values.
bool isNondeterministicCallee(llvm::StringRef qualified) {
  static const char *const kSources[] = {
      "rand",
      "srand",
      "random",
      "srandom",
      "drand48",
      "lrand48",
      "time",
      "gettimeofday",
      "clock_gettime",
      "pthread_self",
      "std::rand",
      "std::srand",
      "std::time",
      "std::chrono::system_clock::now",
      "std::chrono::high_resolution_clock::now",
      "std::this_thread::get_id",
  };
  for (const char *source : kSources)
    if (qualified == source)
      return true;
  return false;
}

/// Walks one function body for the determinism and simd-spec passes
/// plus the call graph. Lambda bodies are analyzed as separate
/// functions by the outer visitor, so this walk stops at LambdaExpr.
class BodyWalker {
public:
  BodyWalker(FunctionRecord &record, const clang::SourceManager &SM,
             bool kernelCandidate, bool inSimdDir)
      : record_(record), SM_(SM), kernelCandidate_(kernelCandidate),
        inSimdDir_(inSimdDir) {}

  // Unlike the lock scanner, this walk DOES descend into lambda
  // bodies: a determinism source inside a sweep-step lambda belongs to
  // the enclosing stage function for taint purposes, and the enclosing
  // function's callee set should include calls the lambda makes.
  void walk(const clang::Stmt *stmt, unsigned loopDepth) {
    if (stmt == nullptr)
      return;
    const bool isLoop = llvm::isa<clang::ForStmt>(stmt) ||
                        llvm::isa<clang::WhileStmt>(stmt) ||
                        llvm::isa<clang::DoStmt>(stmt) ||
                        llvm::isa<clang::CXXForRangeStmt>(stmt);
    if (isLoop)
      ++loopDepth;
    inspect(stmt, loopDepth);
    for (const clang::Stmt *child : stmt->children())
      walk(child, loopDepth);
  }

private:
  void addSource(clang::SourceLocation location, const std::string &what) {
    if (lineHasNolint(location, SM_))
      return;
    Finding finding;
    finding.rule = "anytime-verify-determinism";
    finding.message = what;
    finding.loc = toLoc(location, SM_);
    record_.sources.push_back(finding);
  }

  void inspect(const clang::Stmt *stmt, unsigned loopDepth) {
    if (const auto *call = llvm::dyn_cast<clang::CallExpr>(stmt)) {
      const clang::FunctionDecl *callee = call->getDirectCallee();
      if (callee != nullptr) {
        const std::string qualified = callee->getQualifiedNameAsString();
        record_.callees.insert(qualified);
        if (isNondeterministicCallee(qualified))
          addSource(call->getBeginLoc(),
                    "call to nondeterminism source '" + qualified + "'");
        if (const auto *memberCall =
                llvm::dyn_cast<clang::CXXMemberCallExpr>(call)) {
          const clang::CXXMethodDecl *method = memberCall->getMethodDecl();
          if (method != nullptr &&
              (method->getName() == "publish" ||
               method->getName() == "publishShared") &&
              lockRecordName(method->getParent()) ==
                  "anytime::VersionedBuffer")
            record_.callsPublish = true;
        }
      }
      return;
    }
    if (const auto *construct =
            llvm::dyn_cast<clang::CXXConstructExpr>(stmt)) {
      const clang::CXXConstructorDecl *ctor = construct->getConstructor();
      if (ctor != nullptr &&
          lockRecordName(ctor->getParent()) == "std::random_device")
        addSource(construct->getBeginLoc(),
                  "std::random_device construction");
      return;
    }
    if (const auto *rangeFor =
            llvm::dyn_cast<clang::CXXForRangeStmt>(stmt)) {
      inspectRangeFor(rangeFor);
      return;
    }
    if (const auto *binary = llvm::dyn_cast<clang::BinaryOperator>(stmt)) {
      inspectAccumulate(binary, loopDepth);
      return;
    }
  }

  void inspectRangeFor(const clang::CXXForRangeStmt *rangeFor) {
    const clang::ClassTemplateSpecializationDecl *spec =
        rangeSpecialization(rangeFor->getRangeInit());
    if (spec == nullptr)
      return;
    const std::string name = spec->getQualifiedNameAsString();
    if (name.rfind("std::unordered_", 0) == 0) {
      addSource(rangeFor->getForLoc(),
                "iteration over '" + name +
                    "' (visit order depends on hashing)");
      return;
    }
    // Ordered container, but ordered by pointer value: addresses vary
    // run to run, so the order is still nondeterministic.
    if (name == "std::map" || name == "std::set" ||
        name == "std::multimap" || name == "std::multiset") {
      const clang::TemplateArgumentList &args = spec->getTemplateArgs();
      if (args.size() > 0 &&
          args[0].getKind() == clang::TemplateArgument::Type &&
          args[0].getAsType()->isPointerType())
        addSource(rangeFor->getForLoc(),
                  "iteration over '" + name +
                      "' keyed by pointer value (address order varies "
                      "run to run)");
    }
  }

  void inspectAccumulate(const clang::BinaryOperator *binary,
                         unsigned loopDepth) {
    if (!kernelCandidate_ || inSimdDir_ || loopDepth == 0)
      return;
    if (binary->getOpcode() != clang::BO_AddAssign &&
        binary->getOpcode() != clang::BO_SubAssign)
      return;
    const clang::QualType lhsType = binary->getLHS()->getType();
    if (lhsType.isNull() || !lhsType->isRealFloatingType())
      return;
    if (lineHasNolint(binary->getOperatorLoc(), SM_))
      return;
    Finding finding;
    finding.rule = "anytime-verify-simd-spec";
    finding.message =
        "raw floating-point accumulation in a kernel loop outside "
        "src/simd/; route the arithmetic through the ops table so the "
        "association order matches the SIMD specification";
    finding.loc = toLoc(binary->getOperatorLoc(), SM_);
    record_.rawFloat.push_back(finding);
  }

  FunctionRecord &record_;
  const clang::SourceManager &SM_;
  const bool kernelCandidate_;
  const bool inSimdDir_;
};

/// True when the function takes an anytime::Image / ApproxStorage
/// parameter and is neither a float-returning metric nor a *Reference*
/// oracle — the same rule as the anytime-raw-float-in-kernel tidy
/// check, so per-TU and whole-program enforcement agree.
bool isKernelCandidate(const clang::FunctionDecl *function) {
  const clang::QualType returnType = function->getReturnType();
  if (!returnType.isNull() && returnType->isRealFloatingType())
    return false;
  const std::string name = function->getQualifiedNameAsString();
  if (name.find("Reference") != std::string::npos ||
      name.find("reference") != std::string::npos)
    return false;
  for (const clang::ParmVarDecl *param : function->parameters()) {
    const clang::CXXRecordDecl *record =
        param->getType().getNonReferenceType()->getAsCXXRecordDecl();
    if (record == nullptr)
      continue;
    const std::string recordName = lockRecordName(record);
    if (recordName == "anytime::Image" ||
        recordName == "anytime::ApproxStorage")
      return true;
  }
  return false;
}

class FunctionCollector
    : public clang::RecursiveASTVisitor<FunctionCollector> {
public:
  FunctionCollector(Program &program, clang::ASTContext &context)
      : program_(program), SM_(context.getSourceManager()) {}

  bool shouldVisitTemplateInstantiations() const { return true; }
  bool shouldVisitLambdaBody() const { return true; }

  bool VisitFunctionDecl(const clang::FunctionDecl *function) {
    if (!function->doesThisDeclarationHaveABody() ||
        function->getBody() == nullptr)
      return true;
    const clang::SourceLocation location = function->getLocation();
    if (location.isInvalid() || SM_.isInSystemHeader(location))
      return true;
    analyze(function);
    return true;
  }

  // The lock scanner deliberately skips lambda bodies inside their
  // enclosing function (deferred execution), so each lambda's call
  // operator gets its own lock scan here under a synthetic name.
  bool VisitLambdaExpr(const clang::LambdaExpr *lambda) {
    const clang::CXXMethodDecl *op = lambda->getCallOperator();
    if (op == nullptr || !op->hasBody())
      return true;
    const clang::SourceLocation location = lambda->getBeginLoc();
    if (location.isInvalid() || SM_.isInSystemHeader(location))
      return true;
    const Loc loc = toLoc(location, SM_);
    FunctionRecord record;
    record.name = "lambda@" + loc.file + ":" + std::to_string(loc.line);
    record.loc = loc;
    scanLocks(op, record);
    program_.add(record);
    for (const LockEdge &edge : record.lockEdges)
      program_.addLockEdge(edge);
    for (const CallWhileHeld &call : record.callsWhileHeld)
      program_.addCallWhileHeld(call);
    return true;
  }

private:
  void analyze(const clang::FunctionDecl *function) {
    FunctionRecord record;
    record.name = function->getQualifiedNameAsString();
    record.loc = toLoc(function->getLocation(), SM_);
    record.isMergeNamed = nameMarksMerge(record.name);
    if (const auto *method =
            llvm::dyn_cast<clang::CXXMethodDecl>(function)) {
      if (!method->isStatic() && derivesFromStage(method->getParent()) &&
          lockRecordName(method->getParent()) != "anytime::Stage")
        record.isStageMethod = true;
    }

    const bool inSimd = record.loc.file.find("/simd/") != std::string::npos;
    BodyWalker walker(record, SM_, isKernelCandidate(function), inSimd);
    walker.walk(function->getBody(), 0);

    scanLocks(function, record);

    program_.add(record);
    // The merged record in the program deduplicates by name; findings
    // and lock edges are forwarded separately so an inline function
    // parsed by many TUs reports each site exactly once. Sources park
    // as candidates until reachability is known; raw-float findings
    // are unconditional.
    for (const Finding &finding : record.sources)
      program_.addTaintCandidate(record.name, finding);
    for (const Finding &finding : record.rawFloat)
      program_.addFinding(finding);
    for (const LockEdge &edge : record.lockEdges)
      program_.addLockEdge(edge);
    for (const CallWhileHeld &call : record.callsWhileHeld)
      program_.addCallWhileHeld(call);
  }

  void scanLocks(const clang::FunctionDecl *function,
                 FunctionRecord &record) {
    LockNestingScanner scanner;
    scanner.scan(
        function,
        [&record, this](const ActiveLock &held, const ActiveLock &incoming) {
          LockEdge edge;
          edge.held = held.mutexKey;
          edge.incoming = incoming.mutexKey;
          edge.loc = toLoc(incoming.loc, SM_);
          record.lockEdges.push_back(edge);
        },
        [&record](const ActiveLock &acquired) {
          record.acquires.insert(acquired.mutexKey);
        },
        [&record, this](const std::vector<ActiveLock> &held,
                        const clang::FunctionDecl *callee,
                        clang::SourceLocation location) {
          CallWhileHeld call;
          for (const ActiveLock &lock : held)
            call.held.push_back(lock.mutexKey);
          call.callee = callee->getQualifiedNameAsString();
          call.loc = toLoc(location, SM_);
          record.callsWhileHeld.push_back(call);
        });
  }

  Program &program_;
  const clang::SourceManager &SM_;
};

class CollectConsumer : public clang::ASTConsumer {
public:
  explicit CollectConsumer(Program &program) : program_(program) {}

  void HandleTranslationUnit(clang::ASTContext &context) override {
    FunctionCollector visitor(program_, context);
    visitor.TraverseDecl(context.getTranslationUnitDecl());
  }

private:
  Program &program_;
};

class CollectAction : public clang::ASTFrontendAction {
public:
  explicit CollectAction(Program &program) : program_(program) {}

  std::unique_ptr<clang::ASTConsumer>
  CreateASTConsumer(clang::CompilerInstance &, llvm::StringRef) override {
    return std::make_unique<CollectConsumer>(program_);
  }

private:
  Program &program_;
};

class CollectActionFactory : public clang::tooling::FrontendActionFactory {
public:
  explicit CollectActionFactory(Program &program) : program_(program) {}

  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<CollectAction>(program_);
  }

private:
  Program &program_;
};

} // namespace

std::unique_ptr<clang::tooling::FrontendActionFactory>
makeCollectorFactory(Program &program) {
  return std::make_unique<CollectActionFactory>(program);
}

} // namespace anytime_verify
