//===--- Collector.h --------------------------------------------*- C++ -*-===//
//
// Per-TU collection for anytime_verify. One Collector instance is
// shared by every TU's frontend action; it appends FunctionRecords to
// the Program under analysis. All semantic judgement (cycle detection,
// publish reachability) happens later in the aggregation step — the
// collector only records what one function's body literally contains.
//
//===----------------------------------------------------------------------===//

#ifndef ANYTIME_VERIFY_COLLECTOR_H
#define ANYTIME_VERIFY_COLLECTOR_H

#include <memory>

#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/Tooling.h"

#include "WholeProgram.h"

namespace anytime_verify {

/// Factory for frontend actions that feed one shared Program.
std::unique_ptr<clang::tooling::FrontendActionFactory>
makeCollectorFactory(Program &program);

} // namespace anytime_verify

#endif // ANYTIME_VERIFY_COLLECTOR_H
