//===--- Sarif.h ------------------------------------------------*- C++ -*-===//
//
// Minimal SARIF 2.1.0 writer for anytime_verify findings. Hand-rolled
// JSON (the tool links only LLVM/Clang, and the schema subset CI's
// code-scanning upload needs is tiny): one run, one driver, explicit
// rules, one result per finding.
//
//===----------------------------------------------------------------------===//

#ifndef ANYTIME_VERIFY_SARIF_H
#define ANYTIME_VERIFY_SARIF_H

#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "WholeProgram.h"

namespace anytime_verify {

inline std::string jsonEscape(const std::string &text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
    case '"':
      out += "\\\"";
      break;
    case '\\':
      out += "\\\\";
      break;
    case '\n':
      out += "\\n";
      break;
    case '\t':
      out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buffer[8];
        std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                      static_cast<unsigned>(c) & 0xff);
        out += buffer;
      } else {
        out += c;
      }
    }
  }
  return out;
}

inline std::string toSarif(const std::vector<Finding> &findings,
                           const std::string &toolVersion) {
  std::set<std::string> ruleIds;
  for (const Finding &finding : findings)
    ruleIds.insert(finding.rule);

  std::ostringstream json;
  json << "{\n"
       << "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [{\n"
       << "    \"tool\": {\"driver\": {\n"
       << "      \"name\": \"anytime-verify\",\n"
       << "      \"version\": \"" << jsonEscape(toolVersion) << "\",\n"
       << "      \"rules\": [";
  bool first = true;
  for (const std::string &rule : ruleIds) {
    json << (first ? "" : ", ") << "{\"id\": \"" << jsonEscape(rule)
         << "\"}";
    first = false;
  }
  json << "]\n"
       << "    }},\n"
       << "    \"results\": [";
  first = true;
  for (const Finding &finding : findings) {
    json << (first ? "\n" : ",\n")
         << "      {\"ruleId\": \"" << jsonEscape(finding.rule) << "\", "
         << "\"level\": \"" << (finding.advisory ? "note" : "error")
         << "\", "
         << "\"message\": {\"text\": \"" << jsonEscape(finding.message)
         << "\"}, "
         << "\"locations\": [{\"physicalLocation\": "
         << "{\"artifactLocation\": {\"uri\": \""
         << jsonEscape(finding.loc.file) << "\"}, "
         << "\"region\": {\"startLine\": "
         << (finding.loc.line > 0 ? finding.loc.line : 1) << "}}}]}";
    first = false;
  }
  json << "\n    ]\n"
       << "  }]\n"
       << "}\n";
  return json.str();
}

} // namespace anytime_verify

#endif // ANYTIME_VERIFY_SARIF_H
