//===--- WholeProgram.h -----------------------------------------*- C++ -*-===//
//
// Whole-program data model for anytime_verify: what the per-TU
// collector records, and the pure-STL aggregation that runs after
// every TU has been parsed (call-graph closure to
// VersionedBuffer::publish, the global lock-order graph, cycle
// detection, DOT emission). Deliberately free of clang dependencies so
// the aggregation logic is readable on its own.
//
//===----------------------------------------------------------------------===//

#ifndef ANYTIME_VERIFY_WHOLE_PROGRAM_H
#define ANYTIME_VERIFY_WHOLE_PROGRAM_H

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace anytime_verify {

/// One source location in repo-relative-ish form (as spelled by the
/// compile database).
struct Loc {
  std::string file;
  unsigned line = 0;
  unsigned column = 0;
};

/// One diagnostic produced by a pass.
struct Finding {
  std::string rule;    // e.g. "anytime-verify-lock-order"
  std::string message;
  Loc loc;
  bool advisory = false; // note-level unless --strict
};

/// A lexically observed "acquire B while holding A" edge.
struct LockEdge {
  std::string held;     // class-level mutex key
  std::string incoming;
  Loc loc;
};

/// A call made while >=1 lock was held (fuel for the advisory
/// interprocedural edges).
struct CallWhileHeld {
  std::vector<std::string> held;
  std::string callee;
  Loc loc;
};

/// Everything the collector learned about one function definition.
struct FunctionRecord {
  std::string name; // qualified
  Loc loc;
  bool callsPublish = false;   // VersionedBuffer::publish[Shared]
  bool isStageMethod = false;  // method of a Stage-derived class
  bool isMergeNamed = false;   // name marks it as a merge/combine step
  std::set<std::string> callees;
  std::set<std::string> acquires; // mutex keys acquired directly
  std::vector<LockEdge> lockEdges;
  std::vector<CallWhileHeld> callsWhileHeld;
  std::vector<Finding> sources;  // determinism-taint sources
  std::vector<Finding> rawFloat; // simd-spec violations
};

/// Merged view over every TU. Functions deduplicate by qualified name
/// (inline header functions are parsed once per including TU).
class Program {
public:
  void add(const FunctionRecord &record) {
    auto [it, inserted] = functions_.emplace(record.name, record);
    if (inserted)
      return;
    FunctionRecord &existing = it->second;
    existing.callsPublish |= record.callsPublish;
    existing.isStageMethod |= record.isStageMethod;
    existing.isMergeNamed |= record.isMergeNamed;
    existing.callees.insert(record.callees.begin(), record.callees.end());
    existing.acquires.insert(record.acquires.begin(),
                             record.acquires.end());
  }

  const std::map<std::string, FunctionRecord> &functions() const {
    return functions_;
  }

  /// Pass findings deduplicate by (rule, file, line): an inline header
  /// function parsed by many TUs reports each site exactly once.
  void addFinding(const Finding &finding) {
    const std::string key = finding.rule + "|" + finding.loc.file + ":" +
                            std::to_string(finding.loc.line);
    if (seenFindings_.insert(key).second)
      findings_.push_back(finding);
  }

  /// A determinism source only becomes a diagnostic when its owning
  /// function turns out to be publish-reachable, which is decided
  /// after every TU has been parsed — so sources park here with their
  /// owner until aggregation.
  void addTaintCandidate(const std::string &function,
                         const Finding &finding) {
    const std::string key = finding.loc.file + ":" +
                            std::to_string(finding.loc.line) + "|" +
                            finding.message;
    if (seenTaint_.insert(key).second)
      taintCandidates_.emplace_back(function, finding);
  }

  const std::vector<std::pair<std::string, Finding>> &
  taintCandidates() const {
    return taintCandidates_;
  }

  void addLockEdge(const LockEdge &edge) { lockEdges_.push_back(edge); }

  void addCallWhileHeld(const CallWhileHeld &call) {
    const std::string key = call.callee + "@" + call.loc.file + ":" +
                            std::to_string(call.loc.line);
    if (seenCalls_.insert(key).second)
      callsWhileHeld_.push_back(call);
  }

  const std::vector<Finding> &findings() const { return findings_; }
  const std::vector<LockEdge> &lockEdges() const { return lockEdges_; }
  const std::vector<CallWhileHeld> &callsWhileHeld() const {
    return callsWhileHeld_;
  }

  /// The deterministic-replay region: direct publishers, Stage
  /// methods, and merge-named functions are roots. Callees of a root
  /// execute under the replay contract (a helper whose return value
  /// feeds the published result), so the forward closure over callees
  /// starts from the roots. Callers of that region compute the values
  /// it publishes, so a reverse closure over callers runs on top. The
  /// forward closure deliberately does NOT restart from reverse-marked
  /// functions: main() calling one publisher must not taint every
  /// other function main() happens to call.
  std::set<std::string> publishReachable() const {
    std::set<std::string> sensitive;
    std::vector<std::string> worklist;
    for (const auto &[name, record] : functions_) {
      if (record.callsPublish || record.isStageMethod ||
          record.isMergeNamed) {
        sensitive.insert(name);
        worklist.push_back(name);
      }
    }
    // Forward: everything the roots transitively call.
    while (!worklist.empty()) {
      const std::string current = worklist.back();
      worklist.pop_back();
      auto it = functions_.find(current);
      if (it == functions_.end())
        continue;
      for (const std::string &callee : it->second.callees) {
        if (functions_.count(callee) && sensitive.insert(callee).second)
          worklist.push_back(callee);
      }
    }
    // Reverse: everything that transitively calls into the region.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto &[name, record] : functions_) {
        if (sensitive.count(name))
          continue;
        for (const std::string &callee : record.callees) {
          if (sensitive.count(callee)) {
            sensitive.insert(name);
            changed = true;
            break;
          }
        }
      }
    }
    return sensitive;
  }

  /// Mutexes each function acquires transitively (itself plus every
  /// callee, to a fixpoint). Powers the advisory lock edges.
  std::map<std::string, std::set<std::string>> transitiveAcquires() const {
    std::map<std::string, std::set<std::string>> acquired;
    for (const auto &[name, record] : functions_)
      acquired[name] = record.acquires;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto &[name, record] : functions_) {
        std::set<std::string> &mine = acquired[name];
        const std::size_t before = mine.size();
        for (const std::string &callee : record.callees) {
          auto it = acquired.find(callee);
          if (it != acquired.end())
            mine.insert(it->second.begin(), it->second.end());
        }
        changed |= mine.size() != before;
      }
    }
    return acquired;
  }

private:
  std::map<std::string, FunctionRecord> functions_;
  std::vector<Finding> findings_;
  std::vector<std::pair<std::string, Finding>> taintCandidates_;
  std::vector<LockEdge> lockEdges_;
  std::vector<CallWhileHeld> callsWhileHeld_;
  std::set<std::string> seenFindings_;
  std::set<std::string> seenTaint_;
  std::set<std::string> seenCalls_;
};

/// The global acquisition graph: definite edges come from lexical
/// nesting inside one function; advisory edges come from calling a
/// function that (transitively) acquires while a lock is held.
class LockGraph {
public:
  void addDefinite(const LockEdge &edge) {
    if (edge.held == edge.incoming)
      return; // self-loops are the hint check's territory
    nodes_.insert(edge.held);
    nodes_.insert(edge.incoming);
    auto [it, inserted] =
        definite_.emplace(std::make_pair(edge.held, edge.incoming),
                          edge.loc);
    (void)it;
    (void)inserted;
  }

  void addAdvisory(const std::string &held, const std::string &incoming,
                   const Loc &loc) {
    if (held == incoming)
      return;
    if (definite_.count({held, incoming}))
      return;
    nodes_.insert(held);
    nodes_.insert(incoming);
    advisory_.emplace(std::make_pair(held, incoming), loc);
  }

  /// Shortest-by-construction cycle through the given edge set, empty
  /// when acyclic. Returns node names in order, first == last.
  std::vector<std::string> findCycle(bool includeAdvisory) const {
    std::map<std::string, std::vector<std::string>> out;
    for (const auto &[edge, loc] : definite_)
      out[edge.first].push_back(edge.second);
    if (includeAdvisory)
      for (const auto &[edge, loc] : advisory_)
        out[edge.first].push_back(edge.second);
    std::map<std::string, int> state; // 0 new, 1 on stack, 2 done
    std::vector<std::string> stack;
    std::vector<std::string> cycle;
    for (const std::string &root : nodes_) {
      if (state[root] == 0 && dfs(root, out, state, stack, cycle))
        return cycle;
    }
    return {};
  }

  const std::map<std::pair<std::string, std::string>, Loc> &
  definite() const {
    return definite_;
  }
  const std::map<std::pair<std::string, std::string>, Loc> &
  advisory() const {
    return advisory_;
  }

  /// Graphviz rendering: solid = lexical nesting, dashed = advisory
  /// (call-while-held into a transitive acquirer).
  std::string toDot() const {
    std::ostringstream dot;
    dot << "digraph lock_order {\n"
        << "  rankdir=LR;\n"
        << "  node [shape=box, fontname=\"monospace\"];\n";
    for (const std::string &node : nodes_)
      dot << "  \"" << node << "\";\n";
    for (const auto &[edge, loc] : definite_)
      dot << "  \"" << edge.first << "\" -> \"" << edge.second
          << "\" [style=solid, label=\"" << loc.file << ":" << loc.line
          << "\"];\n";
    for (const auto &[edge, loc] : advisory_)
      dot << "  \"" << edge.first << "\" -> \"" << edge.second
          << "\" [style=dashed, color=gray50];\n";
    dot << "}\n";
    return dot.str();
  }

  /// Location of one edge (definite preferred) for diagnostics.
  Loc edgeLoc(const std::string &from, const std::string &to) const {
    auto it = definite_.find({from, to});
    if (it != definite_.end())
      return it->second;
    auto advisoryIt = advisory_.find({from, to});
    if (advisoryIt != advisory_.end())
      return advisoryIt->second;
    return {};
  }

private:
  static bool dfs(const std::string &node,
                  const std::map<std::string, std::vector<std::string>> &out,
                  std::map<std::string, int> &state,
                  std::vector<std::string> &stack,
                  std::vector<std::string> &cycle) {
    state[node] = 1;
    stack.push_back(node);
    auto it = out.find(node);
    if (it != out.end()) {
      for (const std::string &next : it->second) {
        if (state[next] == 1) {
          auto start = std::find(stack.begin(), stack.end(), next);
          cycle.assign(start, stack.end());
          cycle.push_back(next);
          return true;
        }
        if (state[next] == 0 && dfs(next, out, state, stack, cycle))
          return true;
      }
    }
    stack.pop_back();
    state[node] = 2;
    return false;
  }

  std::set<std::string> nodes_;
  std::map<std::pair<std::string, std::string>, Loc> definite_;
  std::map<std::pair<std::string, std::string>, Loc> advisory_;
};

} // namespace anytime_verify

#endif // ANYTIME_VERIFY_WHOLE_PROGRAM_H
