#!/usr/bin/env python3
"""Drift regressions for the registry cross-checks (clang-free).

The core regression required by the verify contract: injecting a fake
unregistered fault site must make the cross-check FAIL — proving the
checker actually reads the tree rather than rubber-stamping it. Plus
direct unit coverage of the extraction helpers against the real repo.
"""

from __future__ import annotations

import subprocess
import sys
import unittest
from pathlib import Path

TOOL_DIR = Path(__file__).resolve().parent
REPO_ROOT = TOOL_DIR.parent.parent

sys.path.insert(0, str(TOOL_DIR))

import registry_check  # noqa: E402

EXPECTED_SITES = {
    "stage.body",
    "sweep.merge",
    "pool.dispatch",
    "publish",
    "service.build",
    "service.brownout",
    "net.write",
    "net.drain",
}


class ExtractionTest(unittest.TestCase):
    """The extraction helpers must see the real registries."""

    def test_wired_sites_match_the_known_set(self) -> None:
        wired = registry_check.wired_fault_sites(REPO_ROOT)
        self.assertEqual(set(wired), EXPECTED_SITES)

    def test_documented_sites_match_the_known_set(self) -> None:
        documented = registry_check.documented_fault_sites(REPO_ROOT)
        self.assertEqual(documented, EXPECTED_SITES)

    def test_clean_tree_has_no_findings(self) -> None:
        findings = (
            registry_check.check_fault_sites(REPO_ROOT, None)
            + registry_check.check_metric_names(REPO_ROOT)
            + registry_check.check_trace_spans(REPO_ROOT)
        )
        self.assertEqual(findings, [], findings)


class DriftTest(unittest.TestCase):
    """Seeded drift must fail loudly."""

    def run_checker(self, *extra: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [
                sys.executable,
                str(TOOL_DIR / "registry_check.py"),
                "--repo-root",
                str(REPO_ROOT),
                *extra,
            ],
            capture_output=True,
            text=True,
            check=False,
        )

    def test_clean_tree_passes(self) -> None:
        result = self.run_checker()
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_fake_unregistered_site_fails(self) -> None:
        result = self.run_checker("--fake-site", "ghost.site")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("ghost.site", result.stdout)
        self.assertIn("anytime-verify-fault-registry", result.stdout)
        # Both drift modes fire: undocumented AND unexercised.
        self.assertIn("not listed in the fault.hpp site spec",
                      result.stdout)
        self.assertIn("never exercised under tests/", result.stdout)

    def test_fake_site_findings_export_as_json(self) -> None:
        import json
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "findings.json"
            result = self.run_checker(
                "--fake-site", "ghost.site", "--json", str(out)
            )
            self.assertEqual(result.returncode, 1)
            findings = json.loads(out.read_text())
        self.assertEqual(len(findings), 2)
        for entry in findings:
            self.assertEqual(entry["rule"],
                             "anytime-verify-fault-registry")
            self.assertIn("ghost.site", entry["message"])


if __name__ == "__main__":
    unittest.main()
